//! Points-to sets.
//!
//! A [`PointsToSet`] is a set of dense u32 ids (context-sensitive abstract
//! objects, [`crate::solver::CsObjId`]) with a *hybrid* representation:
//! small sets are sorted vectors (cache-friendly, cheap to clone while the
//! vast majority of pointers stay small), and sets that grow past
//! [`SMALL_MAX`] elements promote to a **chunked** representation whose
//! footprint is proportional to the id *ranges* the set actually touches,
//! not to the global id space: elements are keyed by their high bits
//! (`id >> 12`) into fixed-width chunks of 4096 ids each, and every chunk
//! is itself hybrid — a sorted vector of 16-bit low halves below
//! [`SPARSE_MAX`] elements, a fixed 64-word dense block above it.
//!
//! Dense blocks are shared copy-on-write via [`Arc`]: cloning a set (or
//! unioning a set into one that lacks the chunk entirely — the shape of
//! 2obj's per-context duplicates of one base set) bumps a refcount instead
//! of copying 512 bytes, and the first mutation of a shared block clones it
//! ([`Arc::make_mut`]). A block is immutable while shared, which is what
//! keeps sharing safe under the sharded/work-stealing engines: workers own
//! their slots, and a worker that must mutate a shared block copies it into
//! its own slot first.
//!
//! The solver propagates *deltas*: [`PointsToSet::union_delta`] merges a set
//! in and returns exactly the elements that were new, which is what gets
//! pushed further along pointer-flow-graph edges. Every representation
//! preserves the exact-delta contract, and iteration is always in ascending
//! id order regardless of representation.
//!
//! The pre-chunking whole-id-range bitmap remains selectable as an A/B
//! baseline (`CSC_PTS_REPR=legacy`, plumbed through
//! `SolverOptions::pts_repr`); see [`PtsRepr`]. The two representations
//! interoperate element-exactly, so flipping the default mid-process (tests
//! do) only changes layout, never results.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Elements before a small sorted vector promotes to the large
/// representation (chunked by default, whole-range bitmap under
/// [`PtsRepr::Legacy`]).
///
/// 64 keeps every small set within a few cache lines while bounding the
/// quadratic insertion-sort regime; beyond it, word-parallel unions win
/// decisively.
const SMALL_MAX: usize = 64;

/// Low bits of an id addressing within a chunk; a chunk covers
/// `1 << CHUNK_BITS` = 4096 consecutive ids, so low halves fit `u16` and a
/// dense block is exactly [`CHUNK_WORDS`] words.
const CHUNK_BITS: u32 = 12;

/// Mask selecting the within-chunk bits of an id.
const CHUNK_MASK: u32 = (1 << CHUNK_BITS) - 1;

/// 64-bit words per dense chunk block (4096 bits, 512 bytes).
const CHUNK_WORDS: usize = 64;

/// Elements before a sparse chunk densifies. At 128 a sparse chunk costs
/// up to 256 bytes — half a dense block — so chunk footprint stays within
/// 2× of optimal while densification still happens early enough for the
/// word-parallel union kernel to carry the hot chunks.
const SPARSE_MAX: usize = 128;

/// Which large-set representation freshly promoted sets use. The small
/// sorted-vector tier below [`SMALL_MAX`] is common to both.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PtsRepr {
    /// Chunked hybrid set with copy-on-write dense blocks (the default).
    Chunked,
    /// The pre-chunking whole-id-range bitmap (one word span covering the
    /// full object-id space per set). Kept selectable for A/B comparison
    /// via `CSC_PTS_REPR=legacy`.
    Legacy,
}

/// Process-wide promotion default; `false` = chunked. Set per solve from
/// `SolverOptions::resolved_pts_repr`. Reading it only at promotion sites
/// keeps existing sets valid across a flip: the representations
/// interoperate, so a mid-process change (tests flip it) affects layout
/// only.
static LEGACY_REPR: AtomicBool = AtomicBool::new(false);

/// Sets the process-wide default large-set representation (what sets
/// promote to when they outgrow the small sorted-vector tier).
pub fn set_default_repr(repr: PtsRepr) {
    LEGACY_REPR.store(repr == PtsRepr::Legacy, Ordering::Relaxed);
}

/// The current process-wide default large-set representation.
pub fn default_repr() -> PtsRepr {
    if LEGACY_REPR.load(Ordering::Relaxed) {
        PtsRepr::Legacy
    } else {
        PtsRepr::Chunked
    }
}

/// A dense bitmap spanning the whole id range, with a cached population
/// count (the [`PtsRepr::Legacy`] large representation).
#[derive(Clone, Default)]
struct BitSet {
    words: Vec<u64>,
    len: u32,
}

impl BitSet {
    fn with_capacity_for(max_elem: u32) -> Self {
        BitSet {
            words: vec![0; (max_elem as usize / 64) + 1],
            len: 0,
        }
    }

    /// Pre-sizes the word vector to cover `max_elem`, so a following batch
    /// of inserts never pays the per-element tail-resize (which zeroes and
    /// regrows the vector one element at a time).
    fn reserve_for(&mut self, max_elem: u32) {
        let need = (max_elem as usize / 64) + 1;
        if need > self.words.len() {
            self.words.resize(need, 0);
        }
    }

    fn contains(&self, e: u32) -> bool {
        let w = (e / 64) as usize;
        w < self.words.len() && self.words[w] & (1u64 << (e % 64)) != 0
    }

    /// Sets a bit; returns whether it was newly set.
    fn insert(&mut self, e: u32) -> bool {
        let w = (e / 64) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << (e % 64);
        if self.words[w] & mask != 0 {
            return false;
        }
        self.words[w] |= mask;
        self.len += 1;
        true
    }

    fn iter(&self) -> BitIter<'_> {
        BitIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

struct BitIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for BitIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some(self.word_idx as u32 * 64 + bit)
    }
}

/// One 4096-id chunk: sparse sorted low halves below [`SPARSE_MAX`], a
/// copy-on-write dense block above it.
#[derive(Clone)]
enum Chunk {
    /// Sorted, deduplicated within-chunk offsets.
    Sparse(Vec<u16>),
    /// Fixed 64-word bit block, shared CoW across sets. `len` (the cached
    /// popcount) lives outside the `Arc` so sharing never couples two
    /// sets' bookkeeping; it is only valid together with the block it was
    /// computed from, which clone-on-write preserves.
    Dense {
        words: Arc<[u64; CHUNK_WORDS]>,
        len: u32,
    },
}

impl Chunk {
    fn len(&self) -> usize {
        match self {
            Chunk::Sparse(v) => v.len(),
            Chunk::Dense { len, .. } => *len as usize,
        }
    }

    fn contains(&self, low: u16) -> bool {
        match self {
            Chunk::Sparse(v) => v.binary_search(&low).is_ok(),
            Chunk::Dense { words, .. } => words[(low >> 6) as usize] & (1u64 << (low & 63)) != 0,
        }
    }

    /// Inserts a within-chunk offset; returns whether it was new.
    fn insert(&mut self, low: u16) -> bool {
        match self {
            Chunk::Sparse(v) => match v.binary_search(&low) {
                Ok(_) => false,
                Err(i) => {
                    v.insert(i, low);
                    if v.len() > SPARSE_MAX {
                        *self = Chunk::densify(v);
                    }
                    true
                }
            },
            Chunk::Dense { words, len } => {
                let w = (low >> 6) as usize;
                let mask = 1u64 << (low & 63);
                if words[w] & mask != 0 {
                    return false;
                }
                Arc::make_mut(words)[w] |= mask;
                *len += 1;
                true
            }
        }
    }

    /// Builds a dense block from sorted offsets (pre-sized by
    /// construction: the block is a fixed array, so densification never
    /// resizes, unlike the legacy bitmap's per-element tail growth).
    fn densify(sorted: &[u16]) -> Chunk {
        let mut words = [0u64; CHUNK_WORDS];
        for &l in sorted {
            words[(l >> 6) as usize] |= 1u64 << (l & 63);
        }
        Chunk::Dense {
            words: Arc::new(words),
            len: sorted.len() as u32,
        }
    }

    /// Appends every element (with `base` added back) to `out`, ascending.
    fn push_all(&self, base: u32, out: &mut Vec<u32>) {
        match self {
            Chunk::Sparse(v) => out.extend(v.iter().map(|&l| base | l as u32)),
            Chunk::Dense { words, .. } => {
                for (w, &word) in words.iter().enumerate() {
                    let mut cur = word;
                    while cur != 0 {
                        let bit = cur.trailing_zeros();
                        cur &= cur - 1;
                        out.push(base | (w as u32 * 64 + bit));
                    }
                }
            }
        }
    }

    /// Whether every element of `self` is in `other` (same chunk key).
    fn is_subset(&self, other: &Chunk) -> bool {
        if self.len() > other.len() {
            return false;
        }
        match (self, other) {
            (Chunk::Sparse(a), Chunk::Sparse(b)) => {
                // Merge walk over two sorted slices.
                let mut j = 0usize;
                for &l in a {
                    while j < b.len() && b[j] < l {
                        j += 1;
                    }
                    if j >= b.len() || b[j] != l {
                        return false;
                    }
                }
                true
            }
            (Chunk::Sparse(a), Chunk::Dense { words, .. }) => a
                .iter()
                .all(|&l| words[(l >> 6) as usize] & (1u64 << (l & 63)) != 0),
            (Chunk::Dense { words: a, .. }, Chunk::Dense { words: b, .. }) => {
                Arc::ptr_eq(a, b) || a.iter().zip(b.iter()).all(|(&x, &y)| x & !y == 0)
            }
            // A dense chunk always holds more than SPARSE_MAX elements, so
            // the len guard above already rejected this pairing.
            (Chunk::Dense { .. }, Chunk::Sparse(_)) => false,
        }
    }

    /// Whether the two chunks (same key) share at least one element.
    fn intersects(&self, other: &Chunk) -> bool {
        match (self, other) {
            (Chunk::Sparse(a), Chunk::Sparse(b)) => {
                let (mut i, mut j) = (0usize, 0usize);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => return true,
                    }
                }
                false
            }
            (Chunk::Dense { words: a, .. }, Chunk::Dense { words: b, .. }) => {
                Arc::ptr_eq(a, b) || a.iter().zip(b.iter()).any(|(&x, &y)| x & y != 0)
            }
            (Chunk::Sparse(v), Chunk::Dense { words, .. })
            | (Chunk::Dense { words, .. }, Chunk::Sparse(v)) => v
                .iter()
                .any(|&l| words[(l >> 6) as usize] & (1u64 << (l & 63)) != 0),
        }
    }

    /// Heap bytes owned by this chunk, counting a dense block in full
    /// regardless of sharing (see [`PointsToSet::account`] for the
    /// sharing-aware variant).
    fn heap_bytes(&self) -> usize {
        match self {
            Chunk::Sparse(v) => v.capacity() * std::mem::size_of::<u16>(),
            Chunk::Dense { .. } => std::mem::size_of::<[u64; CHUNK_WORDS]>(),
        }
    }
}

/// The chunked large representation: parallel sorted chunk-key / chunk
/// vectors plus a cached total element count.
#[derive(Clone, Default)]
struct ChunkedSet {
    /// Sorted high halves (`id >> CHUNK_BITS`) of the occupied chunks.
    keys: Vec<u32>,
    /// Chunk payloads, parallel to `keys`.
    chunks: Vec<Chunk>,
    len: u32,
}

impl ChunkedSet {
    /// Builds from an ascending, deduplicated element slice.
    fn from_sorted(elems: &[u32]) -> Self {
        let mut set = ChunkedSet::default();
        let mut i = 0usize;
        while i < elems.len() {
            let key = elems[i] >> CHUNK_BITS;
            let mut j = i + 1;
            while j < elems.len() && elems[j] >> CHUNK_BITS == key {
                j += 1;
            }
            let run = &elems[i..j];
            let chunk = if run.len() > SPARSE_MAX {
                let mut words = [0u64; CHUNK_WORDS];
                for &e in run {
                    let l = e & CHUNK_MASK;
                    words[(l >> 6) as usize] |= 1u64 << (l & 63);
                }
                Chunk::Dense {
                    words: Arc::new(words),
                    len: run.len() as u32,
                }
            } else {
                Chunk::Sparse(run.iter().map(|&e| (e & CHUNK_MASK) as u16).collect())
            };
            set.keys.push(key);
            set.chunks.push(chunk);
            i = j;
        }
        set.len = elems.len() as u32;
        set
    }

    fn contains(&self, e: u32) -> bool {
        match self.keys.binary_search(&(e >> CHUNK_BITS)) {
            Ok(i) => self.chunks[i].contains((e & CHUNK_MASK) as u16),
            Err(_) => false,
        }
    }

    fn insert(&mut self, e: u32) -> bool {
        let key = e >> CHUNK_BITS;
        let low = (e & CHUNK_MASK) as u16;
        match self.keys.binary_search(&key) {
            Ok(i) => {
                let added = self.chunks[i].insert(low);
                if added {
                    self.len += 1;
                }
                added
            }
            Err(i) => {
                self.keys.insert(i, key);
                self.chunks.insert(i, Chunk::Sparse(vec![low]));
                self.len += 1;
                true
            }
        }
    }

    /// The largest element, if any (used to pre-size legacy bitmaps on
    /// cross-representation unions).
    fn max_elem(&self) -> Option<u32> {
        let key = *self.keys.last()?;
        let base = key << CHUNK_BITS;
        match self.chunks.last()? {
            Chunk::Sparse(v) => v.last().map(|&l| base | l as u32),
            Chunk::Dense { words, .. } => words
                .iter()
                .enumerate()
                .rev()
                .find(|(_, &w)| w != 0)
                .map(|(i, &w)| base | (i as u32 * 64 + 63 - w.leading_zeros())),
        }
    }

    fn iter(&self) -> ChunkedIter<'_> {
        ChunkedIter {
            keys: &self.keys,
            chunks: &self.chunks,
            ci: 0,
            sp: 0,
            wi: 0,
            cur: match self.chunks.first() {
                Some(Chunk::Dense { words, .. }) => words[0],
                _ => 0,
            },
        }
    }

    fn is_subset(&self, other: &ChunkedSet) -> bool {
        let mut j = 0usize;
        for (i, &key) in self.keys.iter().enumerate() {
            while j < other.keys.len() && other.keys[j] < key {
                j += 1;
            }
            if j >= other.keys.len() || other.keys[j] != key {
                return false;
            }
            if !self.chunks[i].is_subset(&other.chunks[j]) {
                return false;
            }
        }
        true
    }

    fn intersects(&self, other: &ChunkedSet) -> bool {
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.keys.len() && j < other.keys.len() {
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if self.chunks[i].intersects(&other.chunks[j]) {
                        return true;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        false
    }

    /// Merges `other` in; pushes new elements (ascending) into `delta`
    /// when supplied; returns whether the set changed. Chunks `other` has
    /// and `self` lacks are *shared*, not copied: a dense block comes over
    /// as an `Arc` clone, which is what makes context-copied sets cost one
    /// refcount until they diverge.
    fn union_from(&mut self, other: &ChunkedSet, mut delta: Option<&mut Vec<u32>>) -> bool {
        let mut changed = false;
        let mut i = 0usize;
        for (j, &key) in other.keys.iter().enumerate() {
            while i < self.keys.len() && self.keys[i] < key {
                i += 1;
            }
            let base = key << CHUNK_BITS;
            if i < self.keys.len() && self.keys[i] == key {
                let added = union_chunk(
                    &mut self.chunks[i],
                    &other.chunks[j],
                    base,
                    delta.as_deref_mut(),
                );
                if added != 0 {
                    self.len += added;
                    changed = true;
                }
            } else {
                let chunk = other.chunks[j].clone();
                if let Some(d) = delta.as_deref_mut() {
                    chunk.push_all(base, d);
                }
                self.len += chunk.len() as u32;
                self.keys.insert(i, key);
                self.chunks.insert(i, chunk);
                changed = true;
                i += 1;
            }
        }
        changed
    }

    /// Heap bytes owned (sharing-blind; see [`PointsToSet::account`]).
    fn heap_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<u32>()
            + self.chunks.capacity() * std::mem::size_of::<Chunk>()
            + self.chunks.iter().map(Chunk::heap_bytes).sum::<usize>()
    }
}

/// Pushes the elements of `words` that are *not* in the sorted offset
/// slice `skip` into `delta`, ascending, with `base` added back.
fn dense_minus_sparse(words: &[u64; CHUNK_WORDS], skip: &[u16], base: u32, delta: &mut Vec<u32>) {
    let mut s = 0usize;
    for (w, &word) in words.iter().enumerate() {
        let mut cur = word;
        while cur != 0 {
            let bit = cur.trailing_zeros();
            cur &= cur - 1;
            let low = (w as u32 * 64 + bit) as u16;
            while s < skip.len() && skip[s] < low {
                s += 1;
            }
            if s < skip.len() && skip[s] == low {
                continue;
            }
            delta.push(base | low as u32);
        }
    }
}

/// Merges `other` into the same-key chunk `dst`; returns the number of
/// elements added (pushed ascending into `delta` when supplied).
///
/// Dense ∪ dense preserves the eight-word autovectorized or-and-popcount
/// inner loop on the widen-only path, and re-shares the block (`Arc`
/// clone) whenever `dst`'s contents turn out to be a subset of `other`'s —
/// converged chunks deduplicate back to one allocation.
fn union_chunk(dst: &mut Chunk, other: &Chunk, base: u32, delta: Option<&mut Vec<u32>>) -> u32 {
    match (&mut *dst, other) {
        (Chunk::Sparse(sv), Chunk::Sparse(ov)) => {
            let mut merged = Vec::with_capacity(sv.len() + ov.len());
            let (mut i, mut j) = (0usize, 0usize);
            let mut added = 0u32;
            let mut d = delta;
            while i < sv.len() && j < ov.len() {
                match sv[i].cmp(&ov[j]) {
                    std::cmp::Ordering::Less => {
                        merged.push(sv[i]);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push(ov[j]);
                        if let Some(d) = d.as_deref_mut() {
                            d.push(base | ov[j] as u32);
                        }
                        added += 1;
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push(sv[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            merged.extend_from_slice(&sv[i..]);
            for &l in &ov[j..] {
                merged.push(l);
                if let Some(d) = d.as_deref_mut() {
                    d.push(base | l as u32);
                }
                added += 1;
            }
            if merged.len() > SPARSE_MAX {
                *dst = Chunk::densify(&merged);
            } else {
                *sv = merged;
            }
            added
        }
        (Chunk::Sparse(sv), Chunk::Dense { words, len }) => {
            let all_in = sv
                .iter()
                .all(|&l| words[(l >> 6) as usize] & (1u64 << (l & 63)) != 0);
            if let Some(d) = delta {
                dense_minus_sparse(words, sv, base, d);
            }
            if all_in {
                // `dst` ⊆ `other`: share the block instead of copying it.
                let added = *len - sv.len() as u32;
                *dst = Chunk::Dense {
                    words: Arc::clone(words),
                    len: *len,
                };
                added
            } else {
                let mut merged = **words;
                let mut new_len = *len;
                for &l in sv.iter() {
                    let w = (l >> 6) as usize;
                    let mask = 1u64 << (l & 63);
                    if merged[w] & mask == 0 {
                        merged[w] |= mask;
                        new_len += 1;
                    }
                }
                let added = new_len - sv.len() as u32;
                *dst = Chunk::Dense {
                    words: Arc::new(merged),
                    len: new_len,
                };
                added
            }
        }
        (Chunk::Dense { words, len }, Chunk::Sparse(ov)) => {
            // Read-only pass first: never clone a shared block for a
            // no-op chunk union.
            let mut any = false;
            for &l in ov {
                if words[(l >> 6) as usize] & (1u64 << (l & 63)) == 0 {
                    any = true;
                    break;
                }
            }
            if !any {
                return 0;
            }
            let w = Arc::make_mut(words);
            let mut added = 0u32;
            let mut d = delta;
            for &l in ov {
                let wi = (l >> 6) as usize;
                let mask = 1u64 << (l & 63);
                if w[wi] & mask == 0 {
                    w[wi] |= mask;
                    added += 1;
                    if let Some(d) = d.as_deref_mut() {
                        d.push(base | l as u32);
                    }
                }
            }
            *len += added;
            added
        }
        (Chunk::Dense { words: sw, len: sl }, Chunk::Dense { words: ow, len: ol }) => {
            if Arc::ptr_eq(sw, ow) {
                return 0;
            }
            // One fused pass decides subset-ness both ways.
            let (mut o_new, mut s_extra) = (false, false);
            for (&s, &o) in sw.iter().zip(ow.iter()) {
                o_new |= o & !s != 0;
                s_extra |= s & !o != 0;
            }
            if !o_new {
                // `other` ⊆ `dst`: nothing to add.
                return 0;
            }
            if !s_extra {
                // `dst` ⊆ `other`: extract the delta, then re-share the
                // block — converged context copies collapse back to one
                // allocation.
                if let Some(d) = delta {
                    for (w, (&s, &o)) in sw.iter().zip(ow.iter()).enumerate() {
                        let mut new = o & !s;
                        while new != 0 {
                            let bit = new.trailing_zeros();
                            new &= new - 1;
                            d.push(base | (w as u32 * 64 + bit));
                        }
                    }
                }
                let added = *ol - *sl;
                *sw = Arc::clone(ow);
                *sl = *ol;
                return added;
            }
            let dstw = Arc::make_mut(sw);
            let mut added = 0u32;
            if let Some(d) = delta {
                // Delta extraction is inherently serial (bit positions
                // must come out in ascending order), so this path keeps
                // the word-at-a-time scan.
                for (w, (sw, &ow)) in dstw.iter_mut().zip(ow.iter()).enumerate() {
                    let mut new = ow & !*sw;
                    if new == 0 {
                        continue;
                    }
                    *sw |= ow;
                    added += new.count_ones();
                    while new != 0 {
                        let bit = new.trailing_zeros();
                        new &= new - 1;
                        d.push(base | (w as u32 * 64 + bit));
                    }
                }
            } else {
                // Widen-only union (the accumulator path): branchless
                // or-and-popcount over exact-size eight-word chunks of the
                // fixed 64-word block — no bounds checks, so it compiles
                // to SIMD or/popcnt batches.
                let mut d8 = dstw.chunks_exact_mut(8);
                let mut s8 = ow.chunks_exact(8);
                for (dw, sw) in (&mut d8).zip(&mut s8) {
                    for k in 0..8 {
                        added += (sw[k] & !dw[k]).count_ones();
                        dw[k] |= sw[k];
                    }
                }
            }
            *sl += added;
            added
        }
    }
}

#[derive(Clone)]
enum Repr {
    /// Sorted, deduplicated vector.
    Small(Vec<u32>),
    /// Legacy whole-id-range dense bitmap (`CSC_PTS_REPR=legacy`).
    Bits(BitSet),
    /// Chunked hybrid set with CoW dense blocks (the default).
    Chunked(ChunkedSet),
}

impl Default for Repr {
    fn default() -> Self {
        Repr::Small(Vec::new())
    }
}

/// A set of dense u32 ids with delta-union support and a hybrid
/// sorted-vec / chunked (or legacy bitmap) representation.
#[derive(Clone, Default)]
pub struct PointsToSet {
    repr: Repr,
}

impl PointsToSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set holding a single element.
    pub fn singleton(e: u32) -> Self {
        PointsToSet {
            repr: Repr::Small(vec![e]),
        }
    }

    /// Builds a set from an already sorted, deduplicated vector.
    fn from_sorted(mut elems: Vec<u32>) -> Self {
        if elems.len() <= SMALL_MAX {
            // Deltas built by push can carry growth slack; keep persistent
            // small sets trimmed.
            if elems.capacity() > elems.len() + 16 {
                elems.shrink_to_fit();
            }
            return PointsToSet {
                repr: Repr::Small(elems),
            };
        }
        PointsToSet {
            repr: match default_repr() {
                PtsRepr::Chunked => Repr::Chunked(ChunkedSet::from_sorted(&elems)),
                PtsRepr::Legacy => {
                    let mut bits = BitSet::with_capacity_for(*elems.last().unwrap());
                    for &e in &elems {
                        bits.words[(e / 64) as usize] |= 1u64 << (e % 64);
                    }
                    bits.len = elems.len() as u32;
                    Repr::Bits(bits)
                }
            },
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Small(v) => v.len(),
            Repr::Bits(b) => b.len as usize,
            Repr::Chunked(c) => c.len as usize,
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test.
    pub fn contains(&self, e: u32) -> bool {
        match &self.repr {
            Repr::Small(v) => v.binary_search(&e).is_ok(),
            Repr::Bits(b) => b.contains(e),
            Repr::Chunked(c) => c.contains(e),
        }
    }

    /// Inserts one element; returns whether it was new.
    pub fn insert(&mut self, e: u32) -> bool {
        match &mut self.repr {
            Repr::Small(v) => match v.binary_search(&e) {
                Ok(_) => false,
                Err(i) => {
                    v.insert(i, e);
                    self.maybe_promote();
                    true
                }
            },
            Repr::Bits(b) => b.insert(e),
            Repr::Chunked(c) => c.insert(e),
        }
    }

    fn maybe_promote(&mut self) {
        if let Repr::Small(v) = &self.repr {
            if v.len() > SMALL_MAX {
                self.repr = match default_repr() {
                    PtsRepr::Chunked => Repr::Chunked(ChunkedSet::from_sorted(v)),
                    PtsRepr::Legacy => {
                        // Pre-sized from the largest element and filled
                        // word-directly: promotion never tail-resizes.
                        let mut bits = BitSet::with_capacity_for(*v.last().unwrap());
                        for &e in v {
                            bits.words[(e / 64) as usize] |= 1u64 << (e % 64);
                        }
                        bits.len = v.len() as u32;
                        Repr::Bits(bits)
                    }
                };
            }
        }
    }

    /// Merges `other` in and returns the elements that were not yet present
    /// (`None` when nothing changed — the common case, kept allocation-free).
    pub fn union_delta(&mut self, other: &PointsToSet) -> Option<PointsToSet> {
        let mut delta = Vec::new();
        if !self.union_impl(other, Some(&mut delta)) {
            return None;
        }
        debug_assert!(!delta.is_empty());
        Some(PointsToSet::from_sorted(delta))
    }

    /// Merges `other` in without materializing the delta; returns whether
    /// the set changed. This is the cheap path for accumulator sets (the
    /// solver's pending-delta batches) where the caller does not need to
    /// know *which* elements were new — and, on the chunked
    /// representation, the path where whole dense blocks are adopted by
    /// reference (an `Arc` clone per chunk) instead of element-copied.
    pub fn union_with(&mut self, other: &PointsToSet) -> bool {
        self.union_impl(other, None)
    }

    /// The single union core behind [`union_delta`](Self::union_delta) and
    /// [`union_with`](Self::union_with): merges `other` in, pushes the new
    /// elements (in ascending order) into `delta` when one is supplied, and
    /// returns whether the set changed.
    fn union_impl(&mut self, other: &PointsToSet, mut delta: Option<&mut Vec<u32>>) -> bool {
        if other.is_empty() || other.is_subset(self) {
            // No-op union: the common case at fixpoint, kept allocation-free
            // for every representation pairing.
            return false;
        }
        match (&mut self.repr, &other.repr) {
            (Repr::Small(sv), Repr::Small(ov)) => {
                let mut merged = Vec::with_capacity(sv.len() + ov.len());
                let (mut i, mut j) = (0usize, 0usize);
                while i < sv.len() && j < ov.len() {
                    match sv[i].cmp(&ov[j]) {
                        std::cmp::Ordering::Less => {
                            merged.push(sv[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            merged.push(ov[j]);
                            if let Some(d) = delta.as_deref_mut() {
                                d.push(ov[j]);
                            }
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            merged.push(sv[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                merged.extend_from_slice(&sv[i..]);
                for &e in &ov[j..] {
                    merged.push(e);
                    if let Some(d) = delta.as_deref_mut() {
                        d.push(e);
                    }
                }
                // Persistent small sets keep no merge slack (satellite of
                // the memory diet: the capacity was sized for the merge,
                // not the survivors).
                if merged.len() <= SMALL_MAX && merged.capacity() > merged.len() + 16 {
                    merged.shrink_to_fit();
                }
                *sv = merged;
                self.maybe_promote();
                true
            }
            (Repr::Bits(sb), Repr::Small(ov)) => {
                // Pre-size once from the incoming batch's maximum so the
                // insert loop never pays the per-element tail-resize.
                sb.reserve_for(*ov.last().expect("non-empty other"));
                let mut changed = false;
                for &e in ov {
                    if sb.insert(e) {
                        changed = true;
                        if let Some(d) = delta.as_deref_mut() {
                            d.push(e);
                        }
                    }
                }
                changed
            }
            (Repr::Small(_), Repr::Bits(_)) => {
                // The incoming set is already a legacy bitmap; promote to
                // match and do the word-parallel union. Sized up front for
                // both sides so neither the fill nor the union resizes.
                let Repr::Small(sv) = std::mem::take(&mut self.repr) else {
                    unreachable!()
                };
                let Repr::Bits(ob) = &other.repr else {
                    unreachable!()
                };
                let mut bits = BitSet::with_capacity_for(sv.last().copied().unwrap_or(0));
                if bits.words.len() < ob.words.len() {
                    bits.words.resize(ob.words.len(), 0);
                }
                for &e in &sv {
                    bits.words[(e / 64) as usize] |= 1u64 << (e % 64);
                }
                bits.len = sv.len() as u32;
                self.repr = Repr::Bits(bits);
                self.union_impl(other, delta)
            }
            (Repr::Small(_), Repr::Chunked(oc)) => {
                // The incoming set is chunked; promote to match and do the
                // chunk-merge union (which shares missing dense blocks).
                let Repr::Small(sv) = std::mem::take(&mut self.repr) else {
                    unreachable!()
                };
                let mut cs = ChunkedSet::from_sorted(&sv);
                let changed = cs.union_from(oc, delta);
                self.repr = Repr::Chunked(cs);
                debug_assert!(changed);
                changed
            }
            (Repr::Chunked(cs), Repr::Chunked(oc)) => cs.union_from(oc, delta),
            (Repr::Chunked(cs), Repr::Small(ov)) => {
                let mut changed = false;
                for &e in ov {
                    if cs.insert(e) {
                        changed = true;
                        if let Some(d) = delta.as_deref_mut() {
                            d.push(e);
                        }
                    }
                }
                changed
            }
            (Repr::Bits(sb), Repr::Chunked(oc)) => {
                // Mixed-mode pairing (only seen when the process default
                // flips between solves): element-exact, pre-sized once.
                if let Some(max) = oc.max_elem() {
                    sb.reserve_for(max);
                }
                let mut changed = false;
                for e in oc.iter() {
                    if sb.insert(e) {
                        changed = true;
                        if let Some(d) = delta.as_deref_mut() {
                            d.push(e);
                        }
                    }
                }
                changed
            }
            (Repr::Chunked(cs), Repr::Bits(ob)) => {
                let mut changed = false;
                for e in ob.iter() {
                    if cs.insert(e) {
                        changed = true;
                        if let Some(d) = delta.as_deref_mut() {
                            d.push(e);
                        }
                    }
                }
                changed
            }
            (Repr::Bits(sb), Repr::Bits(ob)) => {
                if ob.words.len() > sb.words.len() {
                    sb.words.resize(ob.words.len(), 0);
                }
                if let Some(d) = delta {
                    // Delta extraction is inherently serial (bit positions
                    // must come out in ascending order), so this path keeps
                    // the word-at-a-time scan.
                    let mut changed = false;
                    for (w, (&ow, sw)) in ob.words.iter().zip(sb.words.iter_mut()).enumerate() {
                        let mut new = ow & !*sw;
                        if new == 0 {
                            continue;
                        }
                        *sw |= ow;
                        sb.len += new.count_ones();
                        changed = true;
                        while new != 0 {
                            let bit = new.trailing_zeros();
                            new &= new - 1;
                            d.push(w as u32 * 64 + bit);
                        }
                    }
                    changed
                } else {
                    // Widen-only union (the accumulator path): branchless
                    // or-and-popcount over exact-size eight-word chunks.
                    // The equal-length reslice and the fixed-size inner
                    // loop keep the hot loop free of bounds checks, which
                    // is what lets it compile to SIMD or/popcnt batches.
                    let m = ob.words.len();
                    let dst = &mut sb.words[..m];
                    let src = &ob.words[..m];
                    let mut added = 0u32;
                    let mut d8 = dst.chunks_exact_mut(8);
                    let mut s8 = src.chunks_exact(8);
                    for (dw, sw) in (&mut d8).zip(&mut s8) {
                        for k in 0..8 {
                            added += (sw[k] & !dw[k]).count_ones();
                            dw[k] |= sw[k];
                        }
                    }
                    for (dw, &sw) in d8.into_remainder().iter_mut().zip(s8.remainder()) {
                        added += (sw & !*dw).count_ones();
                        *dw |= sw;
                    }
                    sb.len += added;
                    added != 0
                }
            }
        }
    }

    /// Iterates the elements in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        match &self.repr {
            Repr::Small(v) => Iter(IterInner::Small(v.iter())),
            Repr::Bits(b) => Iter(IterInner::Bits(b.iter())),
            Repr::Chunked(c) => Iter(IterInner::Chunked(c.iter())),
        }
    }

    /// Whether every element of `self` is in `other` — word-parallel when
    /// both sides are dense (chunked blocks compare `Arc`-pointer-equal
    /// first, so shared chunks answer without touching memory),
    /// early-exiting at the first missing element otherwise. This is the
    /// union fast path: most unions a fixpoint solver performs are no-ops,
    /// and a subset test answers that without touching the merge machinery.
    pub fn is_subset(&self, other: &PointsToSet) -> bool {
        if self.len() > other.len() {
            return false;
        }
        match (&self.repr, &other.repr) {
            (Repr::Bits(a), Repr::Bits(b)) => a
                .words
                .iter()
                .enumerate()
                .all(|(i, &w)| w & !b.words.get(i).copied().unwrap_or(0) == 0),
            (Repr::Chunked(a), Repr::Chunked(b)) => a.is_subset(b),
            _ => self.iter().all(|e| other.contains(e)),
        }
    }

    /// Whether the two sets share at least one element.
    pub fn intersects(&self, other: &PointsToSet) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => {
                let (mut i, mut j) = (0usize, 0usize);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => return true,
                    }
                }
                false
            }
            (Repr::Bits(a), Repr::Bits(b)) => a
                .words
                .iter()
                .zip(b.words.iter())
                .any(|(&x, &y)| x & y != 0),
            (Repr::Chunked(a), Repr::Chunked(b)) => a.intersects(b),
            (Repr::Small(v), _) => v.iter().any(|&e| other.contains(e)),
            (_, Repr::Small(v)) => v.iter().any(|&e| self.contains(e)),
            // Mixed large representations (legacy × chunked): only seen
            // when the process default flips between solves.
            _ => self.iter().any(|e| other.contains(e)),
        }
    }

    /// Heap bytes this set owns, counting shared dense blocks in full
    /// (sharing-blind; [`account`](Self::account) attributes each shared
    /// block once).
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Small(v) => v.capacity() * std::mem::size_of::<u32>(),
            Repr::Bits(b) => b.words.capacity() * std::mem::size_of::<u64>(),
            Repr::Chunked(c) => c.heap_bytes(),
        }
    }

    /// Accounts this set into `acc`, attributing each CoW-shared dense
    /// block to the first set that reaches it and counting later
    /// references as deduplicated (see [`crate::mem`]).
    pub fn account(&self, acc: &mut crate::mem::PtsAccount) {
        match &self.repr {
            Repr::Small(v) => acc.bytes += (v.capacity() * std::mem::size_of::<u32>()) as u64,
            Repr::Bits(b) => {
                acc.bytes += (b.words.capacity() * std::mem::size_of::<u64>()) as u64;
            }
            Repr::Chunked(c) => {
                acc.bytes += (c.keys.capacity() * std::mem::size_of::<u32>()
                    + c.chunks.capacity() * std::mem::size_of::<Chunk>())
                    as u64;
                for chunk in &c.chunks {
                    match chunk {
                        Chunk::Sparse(v) => {
                            acc.bytes += (v.capacity() * std::mem::size_of::<u16>()) as u64;
                        }
                        Chunk::Dense { words, .. } => {
                            let block = std::mem::size_of::<[u64; CHUNK_WORDS]>() as u64;
                            if acc.note_block(Arc::as_ptr(words) as usize) {
                                acc.bytes += block;
                            } else {
                                acc.shared_chunks += 1;
                                acc.shared_bytes += block;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Iterator over a [`PointsToSet`], ascending.
pub struct Iter<'a>(IterInner<'a>);

enum IterInner<'a> {
    Small(std::slice::Iter<'a, u32>),
    Bits(BitIter<'a>),
    Chunked(ChunkedIter<'a>),
}

/// Ascending iterator over a [`ChunkedSet`]: chunks in key order, sparse
/// offsets or dense bit-scans within each.
struct ChunkedIter<'a> {
    keys: &'a [u32],
    chunks: &'a [Chunk],
    ci: usize,
    sp: usize,
    wi: usize,
    cur: u64,
}

impl Iterator for ChunkedIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        while self.ci < self.chunks.len() {
            let base = self.keys[self.ci] << CHUNK_BITS;
            match &self.chunks[self.ci] {
                Chunk::Sparse(v) => {
                    if self.sp < v.len() {
                        let e = base | v[self.sp] as u32;
                        self.sp += 1;
                        return Some(e);
                    }
                }
                Chunk::Dense { words, .. } => loop {
                    if self.cur != 0 {
                        let bit = self.cur.trailing_zeros();
                        self.cur &= self.cur - 1;
                        return Some(base | (self.wi as u32 * 64 + bit));
                    }
                    self.wi += 1;
                    if self.wi >= CHUNK_WORDS {
                        break;
                    }
                    self.cur = words[self.wi];
                },
            }
            self.ci += 1;
            self.sp = 0;
            self.wi = 0;
            self.cur = match self.chunks.get(self.ci) {
                Some(Chunk::Dense { words, .. }) => words[0],
                _ => 0,
            };
        }
        None
    }
}

impl Iterator for Iter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match &mut self.0 {
            IterInner::Small(it) => it.next().copied(),
            IterInner::Bits(it) => it.next(),
            IterInner::Chunked(it) => it.next(),
        }
    }
}

impl PartialEq for PointsToSet {
    fn eq(&self, other: &Self) -> bool {
        // Representation-independent: sets are equal iff their (ascending)
        // element sequences are.
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for PointsToSet {}

impl fmt::Debug for PointsToSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<u32> for PointsToSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let mut elems: Vec<u32> = iter.into_iter().collect();
        elems.sort_unstable();
        elems.dedup();
        PointsToSet::from_sorted(elems)
    }
}

impl Extend<u32> for PointsToSet {
    fn extend<T: IntoIterator<Item = u32>>(&mut self, iter: T) {
        // Collect-sort-merge: one O(k log k) sort plus one linear union
        // instead of k O(n) insertions.
        let batch: PointsToSet = iter.into_iter().collect();
        self.union_with(&batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `f` once per large-set representation, with the process
    /// default pinned for the duration of the call.
    fn for_each_repr(f: impl Fn()) {
        for repr in [PtsRepr::Chunked, PtsRepr::Legacy] {
            set_default_repr(repr);
            f();
        }
        set_default_repr(PtsRepr::Chunked);
    }

    #[test]
    fn insert_and_contains() {
        let mut s = PointsToSet::new();
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(!s.insert(5));
        assert!(s.contains(1));
        assert!(s.contains(5));
        assert!(!s.contains(3));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn union_delta_reports_exactly_new_elements() {
        let mut a: PointsToSet = [1, 3, 5].into_iter().collect();
        let b: PointsToSet = [2, 3, 6].into_iter().collect();
        let delta = a.union_delta(&b).unwrap();
        assert_eq!(delta.iter().collect::<Vec<_>>(), vec![2, 6]);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 3, 5, 6]);
        assert!(a.union_delta(&b).is_none(), "second union is a no-op");
    }

    #[test]
    fn union_delta_empty_other() {
        let mut a: PointsToSet = [1].into_iter().collect();
        assert!(a.union_delta(&PointsToSet::new()).is_none());
    }

    #[test]
    fn intersects() {
        let a: PointsToSet = [1, 4, 9].into_iter().collect();
        let b: PointsToSet = [2, 4].into_iter().collect();
        let c: PointsToSet = [3, 5].into_iter().collect();
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(!a.intersects(&PointsToSet::new()));
    }

    #[test]
    fn from_iterator_sorts_and_dedups() {
        let s: PointsToSet = [5, 1, 5, 3].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn promotion_preserves_contents_and_order() {
        for_each_repr(|| {
            let mut s = PointsToSet::new();
            for e in (0..400u32).rev().step_by(3) {
                s.insert(e);
            }
            assert!(
                !matches!(s.repr, Repr::Small(_)),
                "must promote past SMALL_MAX"
            );
            let got: Vec<u32> = s.iter().collect();
            let expect: Vec<u32> = (0..400u32).filter(|e| e % 3 == 0).collect();
            assert_eq!(got, expect);
            for &e in &got {
                assert!(s.contains(e));
            }
            assert!(!s.contains(1));
        });
    }

    #[test]
    fn union_delta_across_representations() {
        // Small ∪ large, large ∪ Small, large ∪ large — under both
        // large-set representations.
        for_each_repr(|| {
            let big_a: PointsToSet = (0..300u32).step_by(2).collect();
            let big_b: PointsToSet = (0..300u32).step_by(3).collect();
            let small: PointsToSet = [1, 2, 601].into_iter().collect();

            let mut s = small.clone();
            let delta = s.union_delta(&big_a).unwrap();
            let expect_delta: Vec<u32> = (0..300u32).step_by(2).filter(|e| *e != 2).collect();
            assert_eq!(delta.iter().collect::<Vec<u32>>(), expect_delta);
            assert_eq!(s.len(), 150 + 2);

            let mut s = big_a.clone();
            let delta = s.union_delta(&small).unwrap();
            assert_eq!(delta.iter().collect::<Vec<u32>>(), vec![1, 601]);

            let mut s = big_a.clone();
            let delta = s.union_delta(&big_b).unwrap();
            let expect: Vec<u32> = (0..300u32).filter(|e| e % 3 == 0 && e % 2 != 0).collect();
            assert_eq!(delta.iter().collect::<Vec<u32>>(), expect);
            assert!(s.union_delta(&big_b).is_none());
        });
    }

    #[test]
    fn union_across_mixed_large_representations() {
        // A legacy-bitmap set and a chunked set must union element-exactly
        // in both directions (the process default can flip between solves).
        set_default_repr(PtsRepr::Legacy);
        let legacy: PointsToSet = (0..300u32).step_by(2).collect();
        set_default_repr(PtsRepr::Chunked);
        let chunked: PointsToSet = (0..9000u32).step_by(3).collect();
        assert!(matches!(legacy.repr, Repr::Bits(_)));
        assert!(matches!(chunked.repr, Repr::Chunked(_)));

        let expect: Vec<u32> = (0..9000u32)
            .filter(|e| (*e < 300 && e % 2 == 0) || e % 3 == 0)
            .collect();

        let mut a = legacy.clone();
        let delta = a.union_delta(&chunked).unwrap();
        assert_eq!(a.iter().collect::<Vec<u32>>(), expect);
        let expect_delta: Vec<u32> = (0..9000u32)
            .filter(|e| e % 3 == 0 && !(*e < 300 && e % 2 == 0))
            .collect();
        assert_eq!(delta.iter().collect::<Vec<u32>>(), expect_delta);

        let mut b = chunked.clone();
        b.union_with(&legacy);
        assert_eq!(b.iter().collect::<Vec<u32>>(), expect);
        assert!(legacy.is_subset(&b));
        assert!(chunked.is_subset(&b));
        assert!(legacy.intersects(&chunked));
    }

    #[test]
    fn chunked_sets_span_sparse_id_ranges() {
        // Elements scattered across far-apart chunk ranges: footprint must
        // stay proportional to touched ranges, and iteration ascending.
        let elems: Vec<u32> = (0..100u32)
            .map(|i| i * 1_000_003)
            .chain(4_000_000..4_000_200)
            .collect();
        let s: PointsToSet = elems.iter().copied().collect();
        let mut sorted = elems.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(s.iter().collect::<Vec<u32>>(), sorted);
        assert_eq!(s.len(), sorted.len());
        // A legacy bitmap spanning id ~1e8 would cost ~12.5 MB; the
        // chunked set must stay within a few KB.
        assert!(
            s.heap_bytes() < 64 * 1024,
            "chunked footprint {} proportional to touched ranges",
            s.heap_bytes()
        );
        for &e in &sorted {
            assert!(s.contains(e));
        }
        assert!(!s.contains(17));
    }

    #[test]
    fn cow_clone_shares_then_diverges() {
        // Cloning a chunked set shares its dense blocks; mutating the
        // clone must never perturb the original.
        set_default_repr(PtsRepr::Chunked);
        let a: PointsToSet = (0..2000u32).collect();
        let before: Vec<u32> = a.iter().collect();
        let mut b = a.clone();
        let mut acc = crate::mem::PtsAccount::default();
        a.account(&mut acc);
        b.account(&mut acc);
        assert!(acc.shared_chunks > 0, "clone must share dense blocks");
        assert!(b.insert(5000));
        assert!(
            !a.contains(5000),
            "CoW: original untouched by clone's insert"
        );
        assert_eq!(a.iter().collect::<Vec<u32>>(), before);
        assert_eq!(b.len(), a.len() + 1);
    }

    #[test]
    fn union_into_empty_shares_blocks() {
        // The 2obj context-copy shape: unioning a large set into an empty
        // accumulator adopts its dense blocks by reference.
        set_default_repr(PtsRepr::Chunked);
        let base: PointsToSet = (0..3000u32).collect();
        let mut copy = PointsToSet::new();
        assert!(copy.union_with(&base));
        assert_eq!(copy, base);
        let mut acc = crate::mem::PtsAccount::default();
        base.account(&mut acc);
        copy.account(&mut acc);
        assert!(
            acc.shared_chunks > 0,
            "union into empty must share, not copy"
        );
    }

    #[test]
    fn equality_is_representation_independent() {
        let big: PointsToSet = (0..200u32).collect();
        let mut grown = PointsToSet::new();
        for e in 0..200u32 {
            grown.insert(e);
        }
        assert_eq!(big, grown);
        let small: PointsToSet = [7].into_iter().collect();
        assert_ne!(big, small);
    }

    #[test]
    fn union_with_matches_union_delta() {
        for_each_repr(|| {
            let cases: Vec<(PointsToSet, PointsToSet)> = vec![
                ([1, 3].into_iter().collect(), [2, 3].into_iter().collect()),
                ((0..200u32).collect(), (100..300u32).collect()),
                ([5].into_iter().collect(), (0..200u32).collect()),
                ((0..200u32).collect(), [7, 500].into_iter().collect()),
                ((0..10u32).collect(), (0..10u32).collect()),
                (
                    (0..5000u32).step_by(7).collect(),
                    (0..9000u32).step_by(13).collect(),
                ),
            ];
            for (a, b) in cases {
                let mut via_delta = a.clone();
                let changed_delta = via_delta.union_delta(&b).is_some();
                let mut via_with = a.clone();
                let changed_with = via_with.union_with(&b);
                assert_eq!(changed_delta, changed_with);
                assert_eq!(via_delta, via_with);
            }
        });
    }

    #[test]
    fn is_subset_across_representations() {
        for_each_repr(|| {
            let small: PointsToSet = [2, 4].into_iter().collect();
            let big: PointsToSet = (0..200u32).step_by(2).collect();
            let other: PointsToSet = [2, 5].into_iter().collect();
            assert!(small.is_subset(&big));
            assert!(!big.is_subset(&small));
            assert!(!other.is_subset(&big));
            assert!(PointsToSet::new().is_subset(&small));
            assert!(big.is_subset(&big));
            let shifted: PointsToSet = (0..200u32).collect();
            assert!(big.is_subset(&shifted));
            assert!(!shifted.is_subset(&big));
        });
    }

    #[test]
    fn extend_merges_batches() {
        let mut s: PointsToSet = [10, 20].into_iter().collect();
        s.extend([5, 20, 15, 5]);
        assert_eq!(s.iter().collect::<Vec<u32>>(), vec![5, 10, 15, 20]);
        s.extend(0..200u32);
        assert_eq!(s.len(), 200);
    }
}
