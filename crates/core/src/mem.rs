//! Memory accounting for the solver data plane.
//!
//! The solver's footprint is dominated by two structures: the points-to
//! sets ([`crate::pts::PointsToSet`] per pointer slot, plus the pending
//! accumulators) and the pointer-flow-graph edge storage (the per-source
//! successor arena and the edge-dedup pair sets). This module gives both a
//! `bytes()`-style walk so `SolverStats` can report `pts_bytes` /
//! `edge_bytes` / `shared_chunks` per solve, and the bench harness can put
//! them next to `peak_rss_kb` in `BENCH_main.json`.
//!
//! Accounting is *sharing-aware* for the chunked representation's
//! copy-on-write dense blocks: each `Arc`-shared block is attributed to the
//! first set that reaches it, and every later reference is counted as a
//! deduplicated chunk ([`PtsAccount::shared_chunks`]) with the bytes it
//! *would* have cost recorded in [`PtsAccount::shared_bytes`]. The numbers
//! are deliberately heap-payload estimates (capacities × element sizes),
//! not allocator-truth; they move with the structures they measure, which
//! is what a regression gate needs.

use crate::fx::FxHashSet;

/// Accumulator for a sharing-aware walk over points-to sets.
#[derive(Default)]
pub struct PtsAccount {
    /// Heap bytes attributed (each shared dense block counted once).
    pub bytes: u64,
    /// Dense-block references that were deduplicated by CoW sharing.
    pub shared_chunks: u64,
    /// Bytes those deduplicated references would have cost unshared.
    pub shared_bytes: u64,
    seen: FxHashSet<usize>,
}

impl PtsAccount {
    /// Notes a dense block by address; returns `true` the first time the
    /// block is seen (the caller then attributes its bytes), `false` for
    /// every later reference (the caller counts it as shared).
    pub fn note_block(&mut self, addr: usize) -> bool {
        self.seen.insert(addr)
    }
}

/// Peak resident set size of this process in kilobytes, from
/// `/proc/self/status` `VmHWM` (Linux high-water mark). `None` off Linux
/// or when the field is absent — callers print `-` and skip gating.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<u64>()
                .ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_block_dedups() {
        let mut acc = PtsAccount::default();
        assert!(acc.note_block(0x1000));
        assert!(!acc.note_block(0x1000));
        assert!(acc.note_block(0x2000));
    }

    #[test]
    fn peak_rss_reads_on_linux() {
        if cfg!(target_os = "linux") {
            let kb = peak_rss_kb().expect("VmHWM present on Linux");
            assert!(kb > 0);
        }
    }
}
