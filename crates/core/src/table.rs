//! Sharded hash tables for plugin obligation state.
//!
//! The parallel propagation engine runs plugin *discovery* (the read-only
//! half of `on_points_to`-style reactions) on the shard workers. The
//! tables those reads hit — the Cut-Shortcut store/load obligations, the
//! container watch and pointer-host maps — are partitioned here into one
//! sub-table per shard, keyed by the same `id % nshards` routing the
//! pointer slots use:
//!
//! * a worker's lookups for the pointers it owns land mostly in one
//!   sub-table, so concurrent discovery across workers does not ping-pong
//!   one big table's cache lines;
//! * registrations (coordinator-side, between rounds) go to the owning
//!   sub-table directly;
//! * every production access is *keyed* (`get` / `or_default` / `insert`),
//!   so hash-map iteration order never influences solver behavior.
//!   [`ShardedTable::merged`] — the deterministic source-order view of the
//!   partition, entries shard-major and key-sorted within each shard — is
//!   the *audit surface* for that claim: the property tests in
//!   `tests/shard_prop.rs` pin the partitioned table (lookups, size, and
//!   the merged view) to a flat reference map under arbitrary operation
//!   interleavings, for every shard count.
//!
//! With one shard (the sequential engine) this is a plain hash map behind
//! an index indirection, so `threads = 1` behavior is unchanged.

use std::hash::Hash;

use crate::fx::FxHashMap;

/// Routes a key to a shard: `shard_index() % nshards`. Implemented by the
/// dense-id key types the solver shards on.
pub trait ShardKey {
    /// The dense index the shard routing is computed from.
    fn shard_index(&self) -> u32;
}

impl ShardKey for u32 {
    fn shard_index(&self) -> u32 {
        *self
    }
}

impl ShardKey for crate::solver::PtrId {
    fn shard_index(&self) -> u32 {
        self.0
    }
}

/// A hash map partitioned into per-shard sub-tables by
/// [`ShardKey::shard_index`]` % nshards`.
///
/// Every operation is deterministic in the sequence of operations applied
/// — the partition is a pure function of the key — so a `ShardedTable`
/// driven by a deterministic coordinator is itself deterministic
/// regardless of how many shards it is split into.
#[derive(Clone, Debug)]
pub struct ShardedTable<K, V> {
    shards: Vec<FxHashMap<K, V>>,
}

impl<K: ShardKey + Eq + Hash, V> ShardedTable<K, V> {
    /// An empty table split into `nshards` sub-tables (at least one).
    pub fn new(nshards: usize) -> Self {
        ShardedTable {
            shards: (0..nshards.max(1)).map(|_| FxHashMap::default()).collect(),
        }
    }

    /// Number of sub-tables.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Re-partitions the table into `nshards` sub-tables, rerouting any
    /// existing entries. The solver calls this once per solve, when the
    /// worker count becomes known.
    pub fn set_shards(&mut self, nshards: usize) {
        let nshards = nshards.max(1);
        if nshards == self.shards.len() {
            return;
        }
        let old = std::mem::replace(
            &mut self.shards,
            (0..nshards).map(|_| FxHashMap::default()).collect(),
        );
        for shard in old {
            for (k, v) in shard {
                self.insert(k, v);
            }
        }
    }

    #[inline]
    fn shard_of(&self, key: &K) -> usize {
        (key.shard_index() as usize) % self.shards.len()
    }

    /// Looks a key up.
    #[inline]
    pub fn get(&self, key: &K) -> Option<&V> {
        self.shards[self.shard_of(key)].get(key)
    }

    /// Looks a key up mutably.
    #[inline]
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let s = self.shard_of(key);
        self.shards[s].get_mut(key)
    }

    /// The value for `key`, inserting a default if absent.
    #[inline]
    pub fn or_default(&mut self, key: K) -> &mut V
    where
        V: Default,
    {
        let s = self.shard_of(&key);
        self.shards[s].entry(key).or_default()
    }

    /// Inserts, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let s = self.shard_of(&key);
        self.shards[s].insert(key, value)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Total number of entries across all sub-tables.
    pub fn len(&self) -> usize {
        self.shards.iter().map(FxHashMap::len).sum()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(FxHashMap::is_empty)
    }

    /// The deterministic source-order view of the partition: entries of
    /// shard 0 first, then shard 1, …, each sub-table's entries sorted by
    /// key. Hash-map iteration order never leaks out of this type; this
    /// is the (test-pinned) order any future whole-table fold must use —
    /// the solver's production accesses are all keyed and never iterate.
    pub fn merged(&self) -> Vec<(&K, &V)>
    where
        K: Ord,
    {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let mut entries: Vec<(&K, &V)> = shard.iter().collect();
            entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
            out.extend(entries);
        }
        out
    }
}

impl<K: ShardKey + Eq + Hash, V> Default for ShardedTable<K, V> {
    fn default() -> Self {
        Self::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_and_reroutes() {
        let mut t: ShardedTable<u32, &str> = ShardedTable::new(3);
        t.insert(0, "a");
        t.insert(4, "b");
        t.insert(8, "c");
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(&4), Some(&"b"));
        t.set_shards(1);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(&8), Some(&"c"));
        assert!(t.contains_key(&0));
        assert!(!t.contains_key(&1));
    }

    #[test]
    fn merged_is_shard_major_key_sorted() {
        let mut t: ShardedTable<u32, u32> = ShardedTable::new(2);
        for k in [5, 2, 3, 0, 1, 4] {
            t.insert(k, k * 10);
        }
        let keys: Vec<u32> = t.merged().into_iter().map(|(k, _)| *k).collect();
        // Shard 0 holds the even keys, shard 1 the odd ones.
        assert_eq!(keys, vec![0, 2, 4, 1, 3, 5]);
    }

    /// `merged()` is a pure function of the table's *content* and shard
    /// count: insert order (which drives hash-map internal order) must
    /// never leak into the view.
    #[test]
    fn merged_independent_of_insert_order() {
        let keys = [12u32, 7, 0, 31, 18, 3, 25, 44, 9, 16];
        for nshards in [1, 2, 3, 4, 7] {
            let mut forward: ShardedTable<u32, u32> = ShardedTable::new(nshards);
            let mut backward: ShardedTable<u32, u32> = ShardedTable::new(nshards);
            let mut shuffled: ShardedTable<u32, u32> = ShardedTable::new(nshards);
            for &k in &keys {
                forward.insert(k, k + 1);
            }
            for &k in keys.iter().rev() {
                backward.insert(k, k + 1);
            }
            for &k in keys.iter().cycle().skip(4).take(keys.len()) {
                shuffled.insert(k, k + 1);
            }
            let view: Vec<(u32, u32)> = forward
                .merged()
                .into_iter()
                .map(|(k, v)| (*k, *v))
                .collect();
            let b: Vec<(u32, u32)> = backward
                .merged()
                .into_iter()
                .map(|(k, v)| (*k, *v))
                .collect();
            let s: Vec<(u32, u32)> = shuffled
                .merged()
                .into_iter()
                .map(|(k, v)| (*k, *v))
                .collect();
            assert_eq!(view, b, "nshards={nshards}: insert order leaked");
            assert_eq!(view, s, "nshards={nshards}: insert order leaked");
        }
    }

    /// Re-partitioning to a given shard count yields exactly the view a
    /// fresh table built at that shard count has — `set_shards` is
    /// content-preserving and the merged view depends only on (content,
    /// shard count). At one shard the view is globally key-sorted, so
    /// every shard count normalizes to the same single-shard view.
    #[test]
    fn merged_deterministic_across_shard_counts() {
        let keys = [12u32, 7, 0, 31, 18, 3, 25, 44, 9, 16];
        let build = |nshards: usize| {
            let mut t: ShardedTable<u32, u32> = ShardedTable::new(nshards);
            for &k in &keys {
                t.insert(k, k * 2);
            }
            t
        };
        let mut sorted: Vec<(u32, u32)> = keys.iter().map(|&k| (k, k * 2)).collect();
        sorted.sort_unstable();
        for from in [1usize, 2, 3, 5, 8] {
            for to in [1usize, 2, 3, 5, 8] {
                let mut t = build(from);
                t.set_shards(to);
                let rehomed: Vec<(u32, u32)> =
                    t.merged().into_iter().map(|(k, v)| (*k, *v)).collect();
                let fresh: Vec<(u32, u32)> = build(to)
                    .merged()
                    .into_iter()
                    .map(|(k, v)| (*k, *v))
                    .collect();
                assert_eq!(
                    rehomed, fresh,
                    "{from} -> {to}: re-partition changed the view"
                );
                let mut t1 = t;
                t1.set_shards(1);
                let normalized: Vec<(u32, u32)> =
                    t1.merged().into_iter().map(|(k, v)| (*k, *v)).collect();
                assert_eq!(normalized, sorted, "{from} -> {to} -> 1: not key-sorted");
            }
        }
    }
}
