//! Calling contexts and context selectors.
//!
//! Contexts are hash-consed sequences of [`CtxElem`]s (allocation sites for
//! object sensitivity, classes for type sensitivity, call sites for call-site
//! sensitivity). The [`ContextSelector`] trait abstracts the policy: the
//! solver is generic over it, so context insensitivity (used by
//! Cut-Shortcut), `k`-object-, `k`-type-, `k`-call-site-sensitivity, and the
//! Zipper-e selective variant all share one engine.

use std::collections::HashSet;

use csc_ir::{CallSiteId, ClassId, MethodId, ObjId, Program};

use crate::fx::FxHashMap;

/// One element of a calling context.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CtxElem {
    /// An allocation site (object sensitivity).
    Obj(ObjId),
    /// A class (type sensitivity): the class containing the receiver
    /// object's allocation site.
    Type(ClassId),
    /// A call site (call-site sensitivity).
    CallSite(CallSiteId),
}

/// A hash-consed context id. `CtxId::EMPTY` is the empty context.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CtxId(pub u32);

impl CtxId {
    /// The empty (context-insensitive) context.
    pub const EMPTY: CtxId = CtxId(0);
}

/// Hash-consing table for contexts.
#[derive(Debug)]
pub struct CtxInterner {
    table: FxHashMap<Vec<CtxElem>, CtxId>,
    ctxs: Vec<Vec<CtxElem>>,
}

impl Default for CtxInterner {
    fn default() -> Self {
        Self::new()
    }
}

impl CtxInterner {
    /// Creates an interner holding only the empty context.
    pub fn new() -> Self {
        let mut table = FxHashMap::default();
        table.insert(Vec::new(), CtxId::EMPTY);
        CtxInterner {
            table,
            ctxs: vec![Vec::new()],
        }
    }

    /// Interns a context string.
    pub fn intern(&mut self, elems: Vec<CtxElem>) -> CtxId {
        if let Some(&id) = self.table.get(&elems) {
            return id;
        }
        let id = CtxId(u32::try_from(self.ctxs.len()).expect("too many contexts"));
        self.ctxs.push(elems.clone());
        self.table.insert(elems, id);
        id
    }

    /// The elements of a context.
    pub fn elems(&self, id: CtxId) -> &[CtxElem] {
        &self.ctxs[id.0 as usize]
    }

    /// Number of distinct contexts created so far.
    pub fn len(&self) -> usize {
        self.ctxs.len()
    }

    /// Whether only the empty context exists.
    pub fn is_empty(&self) -> bool {
        self.ctxs.len() == 1
    }

    /// Appends `elem` to `base`, keeping only the last `k` elements.
    pub fn append_k(&mut self, base: CtxId, elem: CtxElem, k: usize) -> CtxId {
        if k == 0 {
            return CtxId::EMPTY;
        }
        let mut elems = self.ctxs[base.0 as usize].clone();
        elems.push(elem);
        if elems.len() > k {
            let cut = elems.len() - k;
            elems.drain(..cut);
        }
        self.intern(elems)
    }

    /// Truncates `base` to its last `k` elements.
    pub fn truncate_k(&mut self, base: CtxId, k: usize) -> CtxId {
        let elems = &self.ctxs[base.0 as usize];
        if elems.len() <= k {
            return base;
        }
        let cut = elems.len() - k;
        let kept = elems[cut..].to_vec();
        self.intern(kept)
    }
}

/// Everything a selector may look at when choosing the callee context.
#[derive(Copy, Clone, Debug)]
pub struct CallInfo {
    /// The caller method's context.
    pub caller_ctx: CtxId,
    /// The call site.
    pub site: CallSiteId,
    /// The resolved callee.
    pub callee: MethodId,
    /// For instance calls: the receiver object (its heap context and
    /// allocation site). `None` for static calls.
    pub recv: Option<(CtxId, ObjId)>,
}

/// A context-sensitivity policy.
///
/// Implementations must be deterministic: the solver may re-query.
pub trait ContextSelector {
    /// Human-readable name used in reports (e.g. `"2obj"`).
    fn name(&self) -> &str;

    /// The context under which `callee` is analyzed for this call.
    fn select_call(&self, program: &Program, interner: &mut CtxInterner, call: CallInfo) -> CtxId;

    /// The heap context attached to objects allocated while analyzing a
    /// method under `method_ctx`.
    fn select_heap(
        &self,
        program: &Program,
        interner: &mut CtxInterner,
        method_ctx: CtxId,
        obj: ObjId,
    ) -> CtxId;
}

/// Context insensitivity: every method and object lives in the empty
/// context. This is the configuration Cut-Shortcut runs under.
#[derive(Copy, Clone, Debug, Default)]
pub struct CiSelector;

impl ContextSelector for CiSelector {
    fn name(&self) -> &str {
        "ci"
    }

    fn select_call(&self, _: &Program, _: &mut CtxInterner, _: CallInfo) -> CtxId {
        CtxId::EMPTY
    }

    fn select_heap(&self, _: &Program, _: &mut CtxInterner, _: CtxId, _: ObjId) -> CtxId {
        CtxId::EMPTY
    }
}

/// `k`-object sensitivity with `k-1` heap context (the classic `2obj`
/// configuration is `ObjSelector::new(2)`).
#[derive(Copy, Clone, Debug)]
pub struct ObjSelector {
    k: usize,
}

impl ObjSelector {
    /// Creates a `k`-object-sensitive selector.
    pub fn new(k: usize) -> Self {
        ObjSelector { k }
    }
}

impl ContextSelector for ObjSelector {
    fn name(&self) -> &str {
        match self.k {
            1 => "1obj",
            2 => "2obj",
            3 => "3obj",
            _ => "kobj",
        }
    }

    fn select_call(&self, _: &Program, interner: &mut CtxInterner, call: CallInfo) -> CtxId {
        match call.recv {
            Some((heap_ctx, obj)) => interner.append_k(heap_ctx, CtxElem::Obj(obj), self.k),
            // Static calls inherit the caller's context (Doop convention).
            None => call.caller_ctx,
        }
    }

    fn select_heap(
        &self,
        _: &Program,
        interner: &mut CtxInterner,
        method_ctx: CtxId,
        _: ObjId,
    ) -> CtxId {
        interner.truncate_k(method_ctx, self.k.saturating_sub(1))
    }
}

/// `k`-type sensitivity: like object sensitivity but context elements are
/// the classes *containing* the receiver objects' allocation sites
/// (Smaragdakis et al., POPL 2011).
#[derive(Copy, Clone, Debug)]
pub struct TypeSelector {
    k: usize,
}

impl TypeSelector {
    /// Creates a `k`-type-sensitive selector.
    pub fn new(k: usize) -> Self {
        TypeSelector { k }
    }
}

impl ContextSelector for TypeSelector {
    fn name(&self) -> &str {
        match self.k {
            1 => "1type",
            2 => "2type",
            _ => "ktype",
        }
    }

    fn select_call(&self, program: &Program, interner: &mut CtxInterner, call: CallInfo) -> CtxId {
        match call.recv {
            Some((heap_ctx, obj)) => {
                let alloc_class = program.method(program.obj(obj).method()).class();
                interner.append_k(heap_ctx, CtxElem::Type(alloc_class), self.k)
            }
            None => call.caller_ctx,
        }
    }

    fn select_heap(
        &self,
        _: &Program,
        interner: &mut CtxInterner,
        method_ctx: CtxId,
        _: ObjId,
    ) -> CtxId {
        interner.truncate_k(method_ctx, self.k.saturating_sub(1))
    }
}

/// `k`-call-site sensitivity (`k`-CFA).
#[derive(Copy, Clone, Debug)]
pub struct CallSiteSelector {
    k: usize,
}

impl CallSiteSelector {
    /// Creates a `k`-call-site-sensitive selector.
    pub fn new(k: usize) -> Self {
        CallSiteSelector { k }
    }
}

impl ContextSelector for CallSiteSelector {
    fn name(&self) -> &str {
        match self.k {
            1 => "1cs",
            2 => "2cs",
            _ => "kcs",
        }
    }

    fn select_call(&self, _: &Program, interner: &mut CtxInterner, call: CallInfo) -> CtxId {
        interner.append_k(call.caller_ctx, CtxElem::CallSite(call.site), self.k)
    }

    fn select_heap(
        &self,
        _: &Program,
        interner: &mut CtxInterner,
        method_ctx: CtxId,
        _: ObjId,
    ) -> CtxId {
        interner.truncate_k(method_ctx, self.k.saturating_sub(1))
    }
}

/// Selective context sensitivity: applies `inner`'s policy only to the
/// selected methods and analyzes everything else context-insensitively.
/// Used as the main analysis of Zipper-e.
#[derive(Clone, Debug)]
pub struct SelectiveSelector<S> {
    inner: S,
    selected: HashSet<MethodId>,
    name: String,
}

impl<S: ContextSelector> SelectiveSelector<S> {
    /// Wraps `inner`, restricting contexts to `selected` methods.
    pub fn new(inner: S, selected: HashSet<MethodId>, name: impl Into<String>) -> Self {
        SelectiveSelector {
            inner,
            selected,
            name: name.into(),
        }
    }

    /// The selected method set.
    pub fn selected(&self) -> &HashSet<MethodId> {
        &self.selected
    }
}

impl<S: ContextSelector> ContextSelector for SelectiveSelector<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn select_call(&self, program: &Program, interner: &mut CtxInterner, call: CallInfo) -> CtxId {
        if self.selected.contains(&call.callee) {
            self.inner.select_call(program, interner, call)
        } else {
            CtxId::EMPTY
        }
    }

    fn select_heap(
        &self,
        program: &Program,
        interner: &mut CtxInterner,
        method_ctx: CtxId,
        obj: ObjId,
    ) -> CtxId {
        self.inner.select_heap(program, interner, method_ctx, obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_dedups() {
        let mut i = CtxInterner::new();
        let a = i.intern(vec![CtxElem::Obj(ObjId::new(1))]);
        let b = i.intern(vec![CtxElem::Obj(ObjId::new(1))]);
        let c = i.intern(vec![CtxElem::Obj(ObjId::new(2))]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 3); // empty + two
    }

    #[test]
    fn append_k_truncates_oldest() {
        let mut i = CtxInterner::new();
        let o = |n| CtxElem::Obj(ObjId::new(n));
        let c1 = i.append_k(CtxId::EMPTY, o(1), 2);
        let c12 = i.append_k(c1, o(2), 2);
        let c23 = i.append_k(c12, o(3), 2);
        assert_eq!(i.elems(c12), &[o(1), o(2)]);
        assert_eq!(i.elems(c23), &[o(2), o(3)]);
        assert_eq!(i.append_k(c12, o(3), 0), CtxId::EMPTY);
    }

    #[test]
    fn truncate_k_keeps_most_recent() {
        let mut i = CtxInterner::new();
        let o = |n| CtxElem::Obj(ObjId::new(n));
        let c12 = i.intern(vec![o(1), o(2)]);
        let t = i.truncate_k(c12, 1);
        assert_eq!(i.elems(t), &[o(2)]);
        assert_eq!(i.truncate_k(c12, 5), c12);
        assert_eq!(i.truncate_k(c12, 0), CtxId::EMPTY);
    }
}
