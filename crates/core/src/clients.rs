//! The four precision clients used as metrics throughout the paper's
//! evaluation (§5): cast resolution (#fail-cast), method reachability
//! (#reach-mtd), devirtualization (#poly-call), and call-graph construction
//! (#call-edge). For every metric, smaller is better.

use std::collections::HashSet;

use csc_ir::{CallKind, CallSiteId, CastId, Program, Type};

use crate::solver::PtaResult;

/// The four precision metrics of the paper.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PrecisionMetrics {
    /// Casts that may fail (an object in the source's points-to set is not a
    /// subtype of the cast target).
    pub fail_casts: usize,
    /// Reachable methods.
    pub reach_methods: usize,
    /// Virtual call sites resolved to more than one target.
    pub poly_calls: usize,
    /// Call-graph edges (context-insensitively projected).
    pub call_edges: usize,
}

impl PrecisionMetrics {
    /// Computes all four metrics from an analysis result.
    pub fn compute(result: &PtaResult<'_>) -> Self {
        let program = result.state.program;
        PrecisionMetrics {
            fail_casts: fail_casts(result).len(),
            reach_methods: result.state.reachable_methods_projected().len(),
            poly_calls: poly_calls(result).len(),
            call_edges: result.state.call_edges_projected().len(),
        }
        .validate(program)
    }

    fn validate(self, _program: &Program) -> Self {
        self
    }
}

/// The cast sites that may fail under the given result.
///
/// A cast `x = (T) y` may fail iff some object in `pt(y)` (restricted to
/// casts in reachable methods) is not a subtype of `T`.
pub fn fail_casts(result: &PtaResult<'_>) -> HashSet<CastId> {
    let program = result.state.program;
    let reachable = result.state.reachable_methods_projected();
    let mut out = HashSet::new();
    for (i, cast) in program.casts().iter().enumerate() {
        if !reachable.contains(&cast.method()) {
            continue;
        }
        let pt = result.state.pt_var_projected(cast.rhs());
        let may_fail = pt.iter().any(|&o| {
            let ty = Type::Class(program.obj(o).class());
            !program.is_subtype(ty, cast.ty())
        });
        if may_fail {
            out.insert(CastId::from_usize(i));
        }
    }
    out
}

/// The virtual call sites that resolve to more than one callee.
pub fn poly_calls(result: &PtaResult<'_>) -> HashSet<CallSiteId> {
    let program = result.state.program;
    let mut targets: Vec<HashSet<csc_ir::MethodId>> =
        vec![HashSet::new(); program.call_sites().len()];
    for &(_, site, _, callee) in result.state.call_edges() {
        targets[site.index()].insert(callee);
    }
    let mut out = HashSet::new();
    for (i, cs) in program.call_sites().iter().enumerate() {
        if cs.kind() == CallKind::Virtual && targets[i].len() > 1 {
            out.insert(CallSiteId::from_usize(i));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CiSelector;
    use crate::solver::{Budget, NoPlugin, Solver};

    fn analyze(src: &str) -> PrecisionMetrics {
        let program = csc_frontend::compile(src).expect("compiles");
        let program = Box::leak(Box::new(program));
        let (result, _) = Solver::new(program, CiSelector, NoPlugin, Budget::unlimited()).solve();
        PrecisionMetrics::compute(&result)
    }

    #[test]
    fn monomorphic_call_is_not_poly() {
        let m = analyze(
            r#"
            class A { void m() { } }
            class Main { static void main() { A a = new A(); a.m(); } }
            "#,
        );
        assert_eq!(m.poly_calls, 0);
        assert_eq!(m.call_edges, 1);
        assert_eq!(m.reach_methods, 2); // main + A.m
    }

    #[test]
    fn merged_receivers_make_poly_call() {
        let m = analyze(
            r#"
            abstract class A { abstract void m(); }
            class B extends A { void m() { } }
            class C extends A { void m() { } }
            class Main {
                static void main() {
                    A a = pick(new B(), new C());
                    a.m();
                }
                static A pick(A x, A y) { A r; if (true) { r = x; } else { r = y; } return r; }
            }
            "#,
        );
        // CI merges both receivers at the call site.
        assert_eq!(m.poly_calls, 1);
    }

    #[test]
    fn fail_cast_detected_under_ci_merging() {
        let m = analyze(
            r#"
            class A { }
            class B { }
            class Main {
                static Object id(Object o) { return o; }
                static void main() {
                    Object a = id(new A());
                    Object b = id(new B());
                    A onlyA = (A) a;
                }
            }
            "#,
        );
        // CI merges A and B objects in id(); the cast sees a B, may fail.
        assert_eq!(m.fail_casts, 1);
    }

    #[test]
    fn safe_cast_not_counted() {
        let m = analyze(
            r#"
            class A { }
            class Main {
                static void main() {
                    Object a = new A();
                    A x = (A) a;
                }
            }
            "#,
        );
        assert_eq!(m.fail_casts, 0);
    }
}
