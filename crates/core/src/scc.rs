//! Strongly connected components for cycle-collapsed propagation.
//!
//! Assign-cycles in the pointer flow graph (mutually-assigned variables,
//! recursive parameter/return chains) are where a delta-propagating solver
//! burns most of its worklist activity: every member of a cycle eventually
//! holds the same points-to set, yet each delta travels the full cycle.
//! Collapsing each such SCC onto one *representative* pointer makes the
//! cycle cost a single set union.
//!
//! This module provides the algorithmic core, shared by the solver and by
//! the property-test harness:
//!
//! * [`condense`] — an iterative (explicit-stack) Tarjan SCC pass over a
//!   dense adjacency list, assigning component ids in reverse topological
//!   order;
//! * [`UnionFind`] — the representative index. Lookups are read-only (no
//!   path compression on `find`), because the solver reads representatives
//!   from `&self` contexts; instead, [`UnionFind::flatten`] re-canonicalizes
//!   every chain after a batch of merges, which the epoch structure makes
//!   cheap;
//! * [`OnlineScc`] — an online wrapper maintaining the SCC partition under
//!   arbitrary interleavings of edge insertions and queries, by re-running
//!   [`condense`] over the condensed graph whenever a query observes a
//!   dirty state. This is the same epoch pattern the solver uses, exposed
//!   in isolation so the property tests can compare it against an offline
//!   reference model.

/// Sentinel for "not yet visited" / "no component".
const UNVISITED: u32 = u32::MAX;

/// The adaptive condensation-epoch threshold: how many unfiltered copy
/// edges must accumulate, given `edges` PFG edges committed so far,
/// before the next epoch pays for itself. Geometric — the next epoch
/// waits for the edge count to grow by a constant fraction — so total
/// condensation work stays `O((V + E) log E)` however large the graph
/// gets.
///
/// This is a pure function of committed-edge volume, *not* of the
/// propagation schedule: the sequential engine, the bulk-synchronous
/// rounds, and the async work-stealing engine (whose "rounds" do not
/// exist) all trigger epochs from the same accumulated-edge counter at
/// their own coordinator-side quiescent points.
pub fn epoch_threshold(edges: u64) -> u32 {
    u32::try_from((edges / 2).max(4096)).unwrap_or(u32::MAX)
}

/// The result of [`condense`]: a component id per node, ids dense in
/// `0..num_comps`, assigned in reverse topological order of the
/// condensation (every edge goes from a higher to a lower component id,
/// or stays inside one component).
#[derive(Clone, Debug)]
pub struct Condensation {
    /// Component id per node.
    pub comp: Vec<u32>,
    /// Number of components.
    pub num_comps: u32,
}

impl Condensation {
    /// Groups nodes by component: `groups[c]` lists the members of
    /// component `c` in ascending node order.
    pub fn groups(&self) -> Vec<Vec<u32>> {
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); self.num_comps as usize];
        for (u, &c) in self.comp.iter().enumerate() {
            groups[c as usize].push(u as u32);
        }
        groups
    }
}

/// Computes the strongly connected components of the digraph given as a
/// dense adjacency list (`adj[u]` holds the successors of node `u`; every
/// target must be `< adj.len()`). Iterative Tarjan — no recursion, so
/// million-node pointer graphs cannot overflow the thread stack.
pub fn condense(adj: &[Vec<u32>]) -> Condensation {
    let n = adj.len();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNVISITED; n];
    let mut stack: Vec<u32> = Vec::new();
    // (node, next successor position) — the explicit DFS call stack.
    let mut call: Vec<(u32, usize)> = Vec::new();
    let mut next_index = 0u32;
    let mut num_comps = 0u32;

    let visit = |v: u32,
                 index: &mut Vec<u32>,
                 lowlink: &mut Vec<u32>,
                 on_stack: &mut Vec<bool>,
                 stack: &mut Vec<u32>,
                 next_index: &mut u32| {
        index[v as usize] = *next_index;
        lowlink[v as usize] = *next_index;
        *next_index += 1;
        stack.push(v);
        on_stack[v as usize] = true;
    };

    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        visit(
            root,
            &mut index,
            &mut lowlink,
            &mut on_stack,
            &mut stack,
            &mut next_index,
        );
        call.push((root, 0));
        while let Some(&(v, pos)) = call.last() {
            if pos < adj[v as usize].len() {
                call.last_mut().expect("frame exists").1 += 1;
                let w = adj[v as usize][pos];
                debug_assert!((w as usize) < n, "edge target out of range");
                if index[w as usize] == UNVISITED {
                    visit(
                        w,
                        &mut index,
                        &mut lowlink,
                        &mut on_stack,
                        &mut stack,
                        &mut next_index,
                    );
                    call.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    lowlink[p as usize] = lowlink[p as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    loop {
                        let w = stack.pop().expect("SCC stack underflow");
                        on_stack[w as usize] = false;
                        comp[w as usize] = num_comps;
                        if w == v {
                            break;
                        }
                    }
                    num_comps += 1;
                }
            }
        }
    }
    Condensation { comp, num_comps }
}

/// One condensation epoch's merge plan: groups the live representatives
/// of `uf` by the SCCs of `adj` (canonical adjacency over representatives;
/// entries of non-representatives are ignored) and returns every component
/// with at least two members as an ascending member list — `group[0]` is
/// the elected leader (smallest id). Groups come out in deterministic
/// (reverse topological) component order.
///
/// This is the shared epoch core: both the solver's `collapse_cycles` and
/// [`OnlineScc::recondense`] merge exactly the groups this returns, so the
/// property tests on [`OnlineScc`] exercise the same election logic the
/// solver runs.
pub fn merge_groups(uf: &UnionFind, adj: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let cond = condense(adj);
    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); cond.num_comps as usize];
    for u in 0..adj.len() as u32 {
        if uf.is_rep(u) {
            groups[cond.comp[u as usize] as usize].push(u);
        }
    }
    groups.retain(|g| g.len() >= 2);
    groups
}

/// A union-find over dense `u32` ids with *read-only* lookups.
///
/// `find` walks parent chains without mutating them, so it can be called
/// from shared-reference contexts (the solver's `pt()` accessor). Chains
/// are kept short by construction: merges happen in batches (condensation
/// epochs), each followed by a [`flatten`](UnionFind::flatten) pass that
/// points every node directly at its root.
#[derive(Clone, Debug, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether no nodes are tracked.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Adds one node (its own representative) and returns its id.
    pub fn push(&mut self) -> u32 {
        let id = u32::try_from(self.parent.len()).expect("too many nodes");
        self.parent.push(id);
        id
    }

    /// The representative of `u` (read-only chain walk).
    pub fn find(&self, u: u32) -> u32 {
        let mut r = u;
        while self.parent[r as usize] != r {
            r = self.parent[r as usize];
        }
        r
    }

    /// Whether `u` is its own representative.
    pub fn is_rep(&self, u: u32) -> bool {
        self.parent[u as usize] == u
    }

    /// [`find`](UnionFind::find) extended over ids the index does not track
    /// yet: an untracked id is its own representative. The parallel commit
    /// plane allocates fresh pointer ids on worker threads against a
    /// round-frozen union-find; those ids join the index (and may be
    /// aliased onto a canonical duplicate) only at the coordinator's
    /// reconciliation pass after the round.
    pub fn find_ext(&self, u: u32) -> u32 {
        if (u as usize) < self.parent.len() {
            self.find(u)
        } else {
            u
        }
    }

    /// Points `child` (which must currently be a representative) at `root`.
    pub fn set_parent(&mut self, child: u32, root: u32) {
        debug_assert!(self.parent[child as usize] == child, "child must be a rep");
        debug_assert_ne!(child, root);
        self.parent[child as usize] = root;
    }

    /// Re-canonicalizes every chain so all nodes point directly at their
    /// root. Called once per merge batch.
    pub fn flatten(&mut self) {
        for i in 0..self.parent.len() {
            let root = self.find(i as u32);
            self.parent[i] = root;
        }
    }
}

/// An online SCC index: edges arrive one at a time, queries may interleave
/// arbitrarily, and [`repr`](OnlineScc::repr) always reflects the exact SCC
/// partition of all edges inserted so far.
///
/// Internally this is the solver's epoch scheme run at its finest grain:
/// inserted edges accumulate on the condensed graph, and a query on a dirty
/// index re-runs [`condense`] and merges the discovered cycles in the
/// [`UnionFind`]. The property tests compare this against an offline
/// reachability-closure reference after every interleaving step.
#[derive(Clone, Debug, Default)]
pub struct OnlineScc {
    uf: UnionFind,
    /// Successors per *representative*; targets may be stale (merged away)
    /// and are re-canonicalized at condensation time.
    adj: Vec<Vec<u32>>,
    dirty: bool,
}

impl OnlineScc {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// An index with `n` pre-allocated nodes.
    pub fn with_nodes(n: usize) -> Self {
        let mut s = Self::new();
        if n > 0 {
            s.ensure(n as u32 - 1);
        }
        s
    }

    /// Number of tracked nodes.
    pub fn len(&self) -> usize {
        self.uf.len()
    }

    /// Whether no nodes are tracked.
    pub fn is_empty(&self) -> bool {
        self.uf.is_empty()
    }

    /// Grows the index so node `u` exists.
    pub fn ensure(&mut self, u: u32) {
        while self.uf.len() <= u as usize {
            self.uf.push();
            self.adj.push(Vec::new());
        }
    }

    /// Inserts the edge `u -> v` (self-edges and edges inside an already
    /// collapsed component are no-ops).
    pub fn add_edge(&mut self, u: u32, v: u32) {
        self.ensure(u.max(v));
        let (cu, cv) = (self.uf.find(u), self.uf.find(v));
        if cu == cv {
            return;
        }
        self.adj[cu as usize].push(v);
        self.dirty = true;
    }

    /// The representative of `u`'s SCC under all edges inserted so far.
    pub fn repr(&mut self, u: u32) -> u32 {
        self.ensure(u);
        if self.dirty {
            self.recondense();
        }
        self.uf.find(u)
    }

    /// Whether `u` and `v` are in the same SCC.
    pub fn same_component(&mut self, u: u32, v: u32) -> bool {
        self.repr(u) == self.repr(v)
    }

    fn recondense(&mut self) {
        self.dirty = false;
        let n = self.adj.len();
        let mut g: Vec<Vec<u32>> = vec![Vec::new(); n];
        for u in 0..n as u32 {
            if !self.uf.is_rep(u) {
                continue;
            }
            let mut out: Vec<u32> = Vec::with_capacity(self.adj[u as usize].len());
            for &t in &self.adj[u as usize] {
                let c = self.uf.find(t);
                if c != u {
                    out.push(c);
                }
            }
            g[u as usize] = out;
        }
        for group in merge_groups(&self.uf, &g) {
            let leader = group[0];
            for &m in &group[1..] {
                self.uf.set_parent(m, leader);
                let moved = std::mem::take(&mut self.adj[m as usize]);
                self.adj[leader as usize].extend(moved);
            }
        }
        self.uf.flatten();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condense_simple_cycle_and_tail() {
        // 0 -> 1 -> 2 -> 0, 2 -> 3
        let adj = vec![vec![1], vec![2], vec![0, 3], vec![]];
        let c = condense(&adj);
        assert_eq!(c.comp[0], c.comp[1]);
        assert_eq!(c.comp[1], c.comp[2]);
        assert_ne!(c.comp[2], c.comp[3]);
        assert_eq!(c.num_comps, 2);
        // Reverse topological: the tail (a sink) gets the smaller id.
        assert!(c.comp[3] < c.comp[0]);
    }

    #[test]
    fn condense_dag_has_singleton_comps() {
        let adj = vec![vec![1, 2], vec![2], vec![]];
        let c = condense(&adj);
        assert_eq!(c.num_comps, 3);
        let g = c.groups();
        assert!(g.iter().all(|grp| grp.len() == 1));
    }

    #[test]
    fn online_matches_two_phase_insertion() {
        let mut s = OnlineScc::new();
        s.add_edge(0, 1);
        s.add_edge(1, 2);
        assert!(!s.same_component(0, 2));
        s.add_edge(2, 0);
        assert!(s.same_component(0, 2));
        assert!(s.same_component(1, 2));
        // Growing the cycle after a collapse works too.
        s.add_edge(2, 3);
        s.add_edge(3, 1);
        assert!(s.same_component(3, 0));
        // Disconnected node stays alone.
        s.ensure(9);
        assert_eq!(s.repr(9), 9);
    }

    #[test]
    fn representative_is_smallest_member() {
        let mut s = OnlineScc::new();
        s.add_edge(5, 3);
        s.add_edge(3, 7);
        s.add_edge(7, 5);
        assert_eq!(s.repr(5), 3);
        assert_eq!(s.repr(7), 3);
        assert_eq!(s.repr(3), 3);
    }
}
