//! Zipper-e-style selective context sensitivity (Li et al., TOPLAS 2020) —
//! the state-of-the-art baseline the paper compares against in §5.3.
//!
//! Zipper-e runs in three phases:
//!
//! 1. a **pre-analysis** — a context-insensitive pointer analysis;
//! 2. **selection** — from the pre-analysis, find the *precision-critical*
//!    methods: those exhibiting Zipper's three flow patterns (wrapped flow
//!    into fields, wrapped flow out of fields, and direct/unwrapped
//!    parameter-to-return flow), plus container-class methods; then apply
//!    the express ("-e") efficiency threshold, deselecting methods whose
//!    pre-analysis points-to volume marks them as scalability threats;
//! 3. a **main analysis** — object-sensitive contexts applied only to the
//!    selected methods, everything else context-insensitive.
//!
//! This reproduces the structure and signals of the original; the precision
//! flow graph construction is simplified to the pattern level (see
//! DESIGN.md §2 for the substitution note).

use std::collections::HashSet;

use csc_ir::{MethodId, MethodKind, Program};

use crate::csc::{ContainerSpec, StaticInfo};
use crate::solver::{PtaResult, PtrKey};

/// Tuning knobs for selection.
#[derive(Copy, Clone, Debug)]
pub struct ZipperOptions {
    /// Context depth of the main analysis (2 = the paper's configuration).
    pub k: usize,
    /// A method is deselected when its points-to volume exceeds
    /// `threshold_factor` times the average volume of reachable methods.
    pub threshold_factor: f64,
    /// Lower bound for the deselection threshold.
    pub min_threshold: usize,
}

impl Default for ZipperOptions {
    fn default() -> Self {
        ZipperOptions {
            k: 2,
            threshold_factor: 8.0,
            min_threshold: 64,
        }
    }
}

/// The outcome of Zipper-e's selection phase.
#[derive(Clone, Debug)]
pub struct ZipperE {
    /// Methods to analyze context-sensitively.
    pub selected: HashSet<MethodId>,
    /// Precision-critical candidates before the efficiency threshold.
    pub candidates: usize,
    /// Candidates dropped by the efficiency threshold.
    pub deselected_for_cost: usize,
}

impl ZipperE {
    /// Runs the selection phase on a finished pre-analysis result.
    pub fn select(program: &Program, pre: &PtaResult<'_>, opts: ZipperOptions) -> ZipperE {
        let info = StaticInfo::compute(program);
        let reachable = pre.state.reachable_methods_projected();

        // Per-variable points-to volume from the pre-analysis.
        let mut var_volume = vec![0usize; program.vars().len()];
        for p in 0..pre.state.ptr_count() {
            if let PtrKey::Var(_, v) = pre.state.ptr_key(crate::solver::PtrId(p as u32)) {
                var_volume[v.index()] += pre.state.pt(crate::solver::PtrId(p as u32)).len();
            }
        }
        let method_volume = |m: MethodId| -> usize {
            program
                .method(m)
                .vars()
                .iter()
                .map(|v| var_volume[v.index()])
                .sum()
        };

        // Container classes are precision-critical wholesale (Zipper's
        // wrapped flows find them; we use the spec's host roots).
        let spec = ContainerSpec::mini_jdk().resolve(program);
        let is_container_method = |m: MethodId| -> bool {
            let class = program.method(m).class();
            spec.is_host_class(program, class)
                || spec.entrances.contains_key(&m)
                || spec.exits.contains_key(&m)
                || spec.transfers.contains(&m)
        };

        let mut candidates: HashSet<MethodId> = HashSet::new();
        for &m in &reachable {
            let method = program.method(m);
            if method.is_abstract() {
                continue;
            }
            // Direct (unwrapped) flow: parameters reach the return value.
            if info.lflow.contains_key(&m) {
                candidates.insert(m);
            }
            // Wrapped flow in: a parameter is stored into a parameter's
            // field (setters, constructors).
            if info.prop_store_seeds.contains_key(&m) {
                candidates.insert(m);
            }
            // Wrapped flow out: a parameter's field is loaded into the
            // return value (getters), or more generally the method loads a
            // parameter's field and returns a reference — Zipper's object
            // flow graph reaches these through the class's OUT methods.
            if info.prop_load_seeds.contains_key(&m) || info.cut_load_returns.contains(&m) {
                candidates.insert(m);
            }
            if method.ret_ty().is_reference()
                && program.loads().iter().any(|l| {
                    l.method() == m && info.unredefined_param_k[l.base().index()].is_some()
                })
            {
                candidates.insert(m);
            }
            // Containers.
            if is_container_method(m) {
                candidates.insert(m);
            }
            // Constructors that store any argument (common wrapped flow).
            if method.kind() == MethodKind::Constructor {
                let stores_param = program.stores().iter().any(|s| {
                    s.method() == m && info.unredefined_param_k[s.rhs().index()].is_some()
                });
                if stores_param {
                    candidates.insert(m);
                }
            }
        }

        // Express efficiency threshold.
        let total: usize = reachable.iter().map(|&m| method_volume(m)).sum();
        let avg = if reachable.is_empty() {
            0.0
        } else {
            total as f64 / reachable.len() as f64
        };
        let threshold = (avg * opts.threshold_factor)
            .max(opts.min_threshold as f64)
            .ceil() as usize;
        let n_candidates = candidates.len();
        let mut deselected = 0usize;
        let selected: HashSet<MethodId> = candidates
            .into_iter()
            .filter(|&m| {
                let keep = method_volume(m) <= threshold;
                if !keep {
                    deselected += 1;
                }
                keep
            })
            .collect();

        ZipperE {
            selected,
            candidates: n_candidates,
            deselected_for_cost: deselected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CiSelector;
    use crate::solver::{Budget, NoPlugin, Solver};

    #[test]
    fn selects_setters_getters_and_selects() {
        let program = csc_frontend::compile(
            r#"
            class Box {
                Object f;
                void set(Object v) { this.f = v; }
                Object get() { return this.f; }
                Object pick(Object a, Object b) { if (true) { return a; } return b; }
                int size() { return 0; }
            }
            class Main {
                static void main() {
                    Box b = new Box();
                    b.set(new Object());
                    Object x = b.get();
                    Object y = b.pick(new Object(), new Object());
                    int n = b.size();
                }
            }
            "#,
        )
        .unwrap();
        let (pre, _) = Solver::new(&program, CiSelector, NoPlugin, Budget::unlimited()).solve();
        let z = ZipperE::select(&program, &pre, ZipperOptions::default());
        let q = |n: &str| program.method_by_qualified_name(n).unwrap();
        assert!(z.selected.contains(&q("Box.set")));
        assert!(z.selected.contains(&q("Box.get")));
        assert!(z.selected.contains(&q("Box.pick")));
        assert!(!z.selected.contains(&q("Box.size")));
        assert!(!z.selected.contains(&q("Main.main")));
    }
}
