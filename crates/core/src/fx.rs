//! A non-cryptographic, rustc-style multiplicative hasher for the solver's
//! residual hash tables.
//!
//! The solver's hot keys are small tuples of dense u32 ids; `std`'s
//! SipHash spends more time hashing than the table spends probing. This is
//! the `FxHasher` construction used by rustc (rotate, xor, multiply by a
//! mixing constant), implemented locally because the build runs offline.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fast multiplicative hasher for small fixed-size keys.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, w: u64) {
        self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i.wrapping_mul(7)), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i.wrapping_mul(7))), Some(&i));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn distinct_keys_hash_distinctly_enough() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..10_000u64 {
            s.insert(i << 32 | i);
        }
        assert_eq!(s.len(), 10_000);
    }
}
