//! Incremental re-solve: rebasing a completed solve onto a delta-patched
//! program and re-propagating only from the affected frontier.
//!
//! The driver is [`Solver::resolve`]. Given a completed [`PtaResult`] for a
//! base program and a patched program produced by
//! [`csc_ir::ProgramDelta::apply`], it either
//!
//! * extends the fixpoint **in place** — additions are replayed against the
//!   already-reachable units and removals reset exactly the *taint cone*
//!   (every fact transitively derivable from the removed statements) before
//!   a localized re-propagation — or
//! * reports a [`FallbackReason`] telling the caller to run a fresh full
//!   solve of the patched program (always sound; the reasons exist so the
//!   differential harness can assert they fire exactly when their
//!   preconditions hold).
//!
//! ## Why additions can be replayed in place
//!
//! The analysis is monotone: every inference rule only ever adds facts.
//! Appending statements/methods/classes therefore only *grows* the final
//! fixpoint, and the old fixpoint remains a valid partial state — provided
//! no *existing* rule instance changes meaning. The one way an addition can
//! change an existing inference is virtual dispatch: an added override can
//! rebind an existing `(class, signature)` pair, invalidating previously
//! derived call edges. [`csc_ir::Program::dispatch_stable_under`] gates
//! exactly that ([`FallbackReason::DispatchChanged`]).
//!
//! ## Why removals need a taint cone
//!
//! Removing a statement invalidates the facts seeded by it *and everything
//! derived from them*. The closure here mirrors the solver's own rules, run
//! backwards-as-overapproximation: tainted pointers taint their PFG
//! successors and their statement fan-out (load targets, store field
//! pointers, receiver-derived call edges); tainted call edges taint the
//! callee-side parameter/`this`/return-value pointers and the callee unit;
//! tainted units taint all their context-qualified variables and outgoing
//! call edges. Everything tainted is reset, surviving facts are swept back
//! over the statements once, and the ordinary worklist drain re-derives the
//! rest. Over-tainting is sound (it only grows the reset-and-replay
//! region); the closure never under-taints because each rule covers the
//! full derivation footprint of the corresponding solver rule.
//!
//! The cone cannot be localized through an SCC-collapsed representative
//! (members share one physical set, so a per-member reset is meaningless);
//! tainting a collapsed pointer aborts with
//! [`FallbackReason::SccStructure`]. Stateful plugins veto removals (and
//! incompatible additions) through [`Plugin::rebase`]
//! ([`FallbackReason::CscObligations`]).

use std::time::Instant;

use csc_ir::{CallKind, CallSiteId, DeltaEffects, MethodId, Program, Stmt};

use super::{
    Budget, CsObjId, EdgeKind, FallbackReason, Plugin, PtaResult, PtrKey, SolveStatus, Solver,
    SolverState, ABSENT,
};
use crate::context::{CallInfo, ContextSelector, CtxId};
use crate::fx::{FxHashMap, FxHashSet};
use crate::pts::PointsToSet;

/// Outcome of [`Solver::resolve`].
// One value exists per resolve call and it is destructured immediately by
// the driver, so the size asymmetry between variants never costs memory.
#[allow(clippy::large_enum_variant)]
pub enum Resolved<'p, P> {
    /// Localized re-propagation succeeded: the result extends the base
    /// fixpoint and its projections are bit-identical to a from-scratch
    /// solve of the patched program.
    Incremental(PtaResult<'p>, P),
    /// The delta's preconditions for in-place extension do not hold. The
    /// caller should run a fresh full solve of the patched program (with a
    /// *fresh* plugin — the returned one may hold unrebasable state) and
    /// record the reason in [`super::SolverStats::incr_fallback_reason`].
    Fallback(FallbackReason, P),
}

/// The removal cone: everything the taint closure decided must be reset
/// before re-propagation.
#[derive(Default)]
struct TaintSet {
    /// Tainted pointer ids (all SCC representatives of singleton classes —
    /// a collapsed pointer aborts the closure instead).
    ptrs: FxHashSet<u32>,
    /// Tainted call-graph edges.
    call_edges: FxHashSet<(CtxId, CallSiteId, CtxId, MethodId)>,
}

/// Worklists and visited sets for the taint closure.
#[derive(Default)]
struct TaintWork {
    ptr_q: Vec<u32>,
    edge_q: Vec<usize>,
    unit_q: Vec<(CtxId, MethodId)>,
    ptrs: FxHashSet<u32>,
    edges: FxHashSet<usize>,
    units: FxHashSet<(CtxId, MethodId)>,
    /// Set when a tainted pointer turned out to be SCC-collapsed.
    collapsed: bool,
}

impl TaintWork {
    fn push_ptr(&mut self, st: &SolverState<'_>, p: u32) {
        if !self.ptrs.insert(p) {
            return;
        }
        if st.reps.find(p) != p || st.members.contains_key(&p) {
            self.collapsed = true;
            return;
        }
        self.ptr_q.push(p);
    }

    fn push_key(&mut self, st: &SolverState<'_>, key: PtrKey) {
        if let Some(p) = st.find_ptr(key) {
            self.push_ptr(st, p.0);
        }
    }

    fn push_edge(&mut self, i: usize) {
        if self.edges.insert(i) {
            self.edge_q.push(i);
        }
    }

    fn push_unit(&mut self, u: (CtxId, MethodId)) {
        if self.units.insert(u) {
            self.unit_q.push(u);
        }
    }
}

/// Computes the removal cone on the *base* solver state (before rebasing),
/// seeded from the delta's removed statements. `Err(())` means the cone
/// touched SCC-collapsed structure and cannot be localized.
fn compute_taint(st: &SolverState<'_>, fx: &DeltaEffects) -> Result<TaintSet, ()> {
    let program = st.program;

    // Call-graph indexes for the closure's edge rules.
    let mut by_caller_site: FxHashMap<(CtxId, CallSiteId), Vec<usize>> = FxHashMap::default();
    let mut by_caller_unit: FxHashMap<(CtxId, MethodId), Vec<usize>> = FxHashMap::default();
    for (i, &(cctx, site, _, _)) in st.call_edges.iter().enumerate() {
        by_caller_site.entry((cctx, site)).or_default().push(i);
        by_caller_unit
            .entry((cctx, program.call_site(site).method()))
            .or_default()
            .push(i);
    }
    let mut ctxs_of: FxHashMap<MethodId, Vec<CtxId>> = FxHashMap::default();
    for &(ctx, m) in &st.reachable_log {
        ctxs_of.entry(m).or_default().push(ctx);
    }

    let mut w = TaintWork::default();

    // Seeds: per removed statement (nested statements included — a removed
    // `If`/`While` removes its whole subtree), per context the enclosing
    // method was reachable under, taint exactly what the statement seeded.
    for (m, removed) in &fx.removed_stmts {
        let Some(ctxs) = ctxs_of.get(m) else { continue };
        removed.visit(&mut |s| {
            // A statement added and removed by the *same* delta never
            // existed in the base program: its site/var ids point past the
            // base tables and it seeded nothing into the base state.
            let in_base = match s {
                Stmt::New { lhs, .. } | Stmt::Assign { lhs, .. } => lhs.index() < fx.base.vars,
                Stmt::Cast(id) => id.index() < fx.base.casts,
                Stmt::Load(id) => id.index() < fx.base.loads,
                Stmt::Store(id) => id.index() < fx.base.stores,
                Stmt::Call(id) => id.index() < fx.base.call_sites,
                _ => true,
            };
            if !in_base {
                return;
            }
            for &ctx in ctxs {
                match s {
                    Stmt::New { lhs, .. } | Stmt::Assign { lhs, .. } => {
                        w.push_key(st, PtrKey::Var(ctx, *lhs));
                    }
                    Stmt::Cast(id) => {
                        w.push_key(st, PtrKey::Var(ctx, program.cast(*id).lhs()));
                    }
                    Stmt::Load(id) => {
                        w.push_key(st, PtrKey::Var(ctx, program.load(*id).lhs()));
                    }
                    Stmt::Store(id) => {
                        // The store's field-pointer targets over the base's
                        // final points-to set (a superset of every set the
                        // store ever fired against).
                        let site = program.store(*id);
                        if let Some(b) = st.find_ptr(PtrKey::Var(ctx, site.base())) {
                            for o in st.slots.pts(st.reps.find(b.0)).iter() {
                                w.push_key(st, PtrKey::Field(CsObjId(o), site.field()));
                            }
                        }
                    }
                    Stmt::Call(id) => {
                        if let Some(edges) = by_caller_site.get(&(ctx, *id)) {
                            for &i in edges {
                                w.push_edge(i);
                            }
                        }
                    }
                    _ => {}
                }
            }
        });
    }

    // Closure.
    let (mut pi, mut ei, mut ui) = (0, 0, 0);
    while !w.collapsed && (pi < w.ptr_q.len() || ei < w.edge_q.len() || ui < w.unit_q.len()) {
        while pi < w.ptr_q.len() && !w.collapsed {
            let p = w.ptr_q[pi];
            pi += 1;
            // PFG successors (the group at an uncollapsed representative
            // holds exactly its own outgoing original-endpoint pairs).
            if let Some(pairs) = st.slots.edge_pairs(p) {
                let dsts: Vec<u32> = pairs.iter().map(|(_, d)| d).collect();
                for d in dsts {
                    w.push_ptr(st, d);
                }
            }
            // Statement fan-out.
            if let PtrKey::Var(ctx, v) = st.ptr_keys[p as usize] {
                for i in 0..st.stmts.loads_with_base[v.index()].len() {
                    let l = st.stmts.loads_with_base[v.index()][i];
                    w.push_key(st, PtrKey::Var(ctx, program.load(l).lhs()));
                }
                for i in 0..st.stmts.stores_with_base[v.index()].len() {
                    let s = st.stmts.stores_with_base[v.index()][i];
                    let field = program.store(s).field();
                    for o in st.slots.pts(p).iter() {
                        w.push_key(st, PtrKey::Field(CsObjId(o), field));
                    }
                }
                for i in 0..st.stmts.calls_with_recv[v.index()].len() {
                    let site = st.stmts.calls_with_recv[v.index()][i];
                    if let Some(edges) = by_caller_site.get(&(ctx, site)) {
                        for &e in edges {
                            w.push_edge(e);
                        }
                    }
                }
            }
        }
        while ei < w.edge_q.len() {
            let (cctx, site, ectx, callee) = st.call_edges[w.edge_q[ei]];
            ei += 1;
            let cs = program.call_site(site);
            let m = program.method(callee);
            if let Some(this) = m.this_var() {
                w.push_key(st, PtrKey::Var(ectx, this));
            }
            for &param in m.params() {
                w.push_key(st, PtrKey::Var(ectx, param));
            }
            if let (Some(lhs), Some(_ret)) = (cs.lhs(), m.ret_var()) {
                w.push_key(st, PtrKey::Var(cctx, lhs));
            }
            // Any tainted support taints the callee unit (over-approximate
            // but cycle-safe: a unit kept alive by untainted edges stays in
            // the rebuilt reachable set and is re-swept).
            w.push_unit((ectx, callee));
        }
        while ui < w.unit_q.len() {
            let (ctx, m) = w.unit_q[ui];
            ui += 1;
            for &v in program.method(m).vars() {
                w.push_key(st, PtrKey::Var(ctx, v));
            }
            if let Some(edges) = by_caller_unit.get(&(ctx, m)) {
                for &e in edges.clone().iter() {
                    w.push_edge(e);
                }
            }
        }
    }
    if w.collapsed {
        return Err(());
    }
    Ok(TaintSet {
        ptrs: w.ptrs,
        call_edges: w.edges.into_iter().map(|i| st.call_edges[i]).collect(),
    })
}

/// Rebases a base solver state onto the patched program: dense tables are
/// extended over the appended entity ids, the statement index is rebuilt
/// from the patched bodies, and the per-run budget/clock/timing stats are
/// reset. Everything else — interned pointers and objects, points-to sets,
/// PFG, call graph, reachability, SCC structure, shard layout — carries
/// over verbatim (entity ids are append-only across a delta).
fn rebase_state<'p>(
    old: SolverState<'_>,
    patched: &'p Program,
    budget: Budget,
    start: Instant,
) -> SolverState<'p> {
    let SolverState {
        program: _,
        interner,
        mut ci_var_ptrs,
        var_ptr_table,
        field_ptr_table,
        ptr_keys,
        mut ci_objs,
        obj_table,
        obj_keys,
        slots,
        reps,
        members,
        copy_edges_since_collapse,
        opts,
        nthreads,
        par_commit,
        balanced_route,
        async_engine,
        round_fusion,
        inline_cap,
        fused_streak,
        route_cost,
        queue,
        events,
        emit_events,
        mut reachable_ci,
        reachable_cs,
        reachable_log,
        call_edge_set,
        call_edges,
        call_edges_by_callee,
        stmts: _,
        mut stats,
        budget: _,
        started: _,
        poisoned,
    } = old;
    ci_var_ptrs.resize(patched.vars().len(), ABSENT);
    ci_objs.resize(patched.objs().len(), ABSENT);
    reachable_ci.resize(patched.methods().len(), false);
    // Per-run timing: drain() recomputes the Amdahl split from zero.
    stats.parallel_secs = 0.0;
    stats.coordinator_secs = 0.0;
    stats.commit_secs = 0.0;
    SolverState {
        program: patched,
        interner,
        ci_var_ptrs,
        var_ptr_table,
        field_ptr_table,
        ptr_keys,
        ci_objs,
        obj_table,
        obj_keys,
        slots,
        reps,
        members,
        copy_edges_since_collapse,
        opts,
        nthreads,
        par_commit,
        balanced_route,
        async_engine,
        round_fusion,
        inline_cap,
        fused_streak,
        route_cost,
        queue,
        events,
        emit_events,
        reachable_ci,
        reachable_cs,
        reachable_log,
        call_edge_set,
        call_edges,
        call_edges_by_callee,
        stmts: crate::shard::StmtIndex::build(patched),
        stats,
        poisoned,
        budget,
        started: start,
    }
}

impl<'p> SolverState<'p> {
    /// Resets everything in the taint cone: tainted pointers lose their
    /// points-to facts, PFG edges *into* tainted pointers are removed (the
    /// closure guarantees a tainted source implies a tainted destination,
    /// so this removes every edge incident to the cone), tainted call
    /// edges leave the call graph, and reachability is rebuilt as
    /// `{entry} ∪ {targets of surviving call edges}` (order-preserving).
    fn reset_cone(&mut self, taint: &TaintSet) {
        for &p in &taint.ptrs {
            *self.slots.pts_mut(p) = PointsToSet::new();
            let pending = self.slots.pending_mut(p);
            if !pending.is_empty() {
                *pending = PointsToSet::new();
            }
        }

        let mut removed_edges = 0u64;
        for r in 0..self.slots.len() {
            let Some(mut pairs) = self.slots.take_edge_pairs(r) else {
                continue;
            };
            let dead: Vec<(u32, u32)> = pairs
                .iter()
                .filter(|&(_, d)| taint.ptrs.contains(&d))
                .collect();
            if !dead.is_empty() {
                for &(s, d) in &dead {
                    pairs.remove(s, d);
                }
                removed_edges += dead.len() as u64;
                let kept: Vec<_> = self
                    .slots
                    .take_succ(r)
                    .into_iter()
                    .filter(|&(t, _)| !taint.ptrs.contains(&t.0))
                    .collect();
                self.slots.put_succ(r, kept);
            }
            self.slots.put_edge_pairs(r, pairs);
        }
        self.stats.edges -= removed_edges;

        for e in &taint.call_edges {
            self.call_edge_set.remove(e);
        }
        self.call_edges.retain(|e| !taint.call_edges.contains(e));
        let callees: FxHashSet<MethodId> = taint.call_edges.iter().map(|e| e.3).collect();
        for c in callees {
            if let Some(v) = self.call_edges_by_callee.get_mut(&c) {
                v.retain(|&(a, s, b)| !taint.call_edges.contains(&(a, s, b, c)));
            }
        }
        self.stats.call_edges = self.call_edges.len() as u64;

        let mut keep: FxHashSet<(CtxId, MethodId)> = FxHashSet::default();
        keep.insert((CtxId::EMPTY, self.program.entry()));
        keep.extend(
            self.call_edges
                .iter()
                .map(|&(_, _, ectx, callee)| (ectx, callee)),
        );
        self.reachable_log.retain(|u| keep.contains(u));
        for b in self.reachable_ci.iter_mut() {
            *b = false;
        }
        self.reachable_cs.clear();
        for i in 0..self.reachable_log.len() {
            let (ctx, m) = self.reachable_log[i];
            if ctx == CtxId::EMPTY {
                self.reachable_ci[m.index()] = true;
            } else {
                self.reachable_cs.insert((ctx, m));
            }
        }
        self.stats.reachable = self.reachable_log.len() as u64;
    }

    /// Post-reset sweep: re-derives, idempotently, every fact the reset
    /// could have removed whose premises survive. Three parts:
    ///
    /// 1. every reachable unit's allocation/copy/cast/static-call
    ///    statements are replayed ([`SolverState::add_reachable`]'s body
    ///    without the reachability insert — `add_edge` and `add_call_edge`
    ///    deduplicate, `enqueue_one` re-seeds reset allocation targets);
    /// 2. every surviving call edge's `[Param]`/`[Return]` edges are
    ///    replayed explicitly (`add_call_edge`'s dedup early-returns for
    ///    surviving edges, so it would never re-derive them itself);
    /// 3. every pointer with a surviving non-empty points-to set is swept
    ///    through statement processing with its *full* set as the delta —
    ///    re-deriving load/store edges into reset field pointers, receiver
    ///    `this`-flows, and call edges, all against the patched program's
    ///    statement index.
    ///
    /// The ordinary drain then runs the re-seeded worklist to fixpoint.
    fn replay_after_reset<S: ContextSelector, P: Plugin>(&mut self, selector: &S, plugin: &P) {
        // Part 1.
        let units = self.reachable_log.clone();
        for &(ctx, method) in &units {
            self.replay_unit_stmts(selector, plugin, ctx, method);
        }
        // Part 2.
        let edges = self.call_edges.clone();
        for (cctx, site, ectx, callee) in edges {
            self.replay_call_flows(plugin, cctx, site, ectx, callee);
        }
        // Part 3.
        for i in 0..self.ptr_keys.len() as u32 {
            if let PtrKey::Var(ctx, v) = self.ptr_keys[i as usize] {
                let rep = self.reps.find(i);
                if self.slots.pts(rep).is_empty() {
                    continue;
                }
                let set = self.slots.pts(rep).clone();
                self.process_var_stmts(selector, plugin, ctx, v, &set);
            }
        }
    }

    /// Replays a reachable unit's context-free statements (part 1 of the
    /// post-reset sweep): `[New]` seeds, `[Assign]`/`[Cast]` edges, and
    /// static `[Call]` edges, exactly as `add_reachable` derives them on
    /// first discovery.
    fn replay_unit_stmts<S: ContextSelector, P: Plugin>(
        &mut self,
        selector: &S,
        plugin: &P,
        ctx: CtxId,
        method: MethodId,
    ) {
        let m = self.program.method(method);
        let mut news = Vec::new();
        let mut assigns = Vec::new();
        let mut static_calls = Vec::new();
        m.visit_stmts(|s| match s {
            Stmt::New { lhs, obj } => news.push((*lhs, *obj)),
            Stmt::Assign { lhs, rhs } => assigns.push((*rhs, *lhs, EdgeKind::Assign)),
            Stmt::Cast(id) => {
                let c = self.program.cast(*id);
                assigns.push((c.rhs(), c.lhs(), EdgeKind::Cast(*id)));
            }
            Stmt::Call(id) if self.program.call_site(*id).kind() == CallKind::Static => {
                static_calls.push(*id);
            }
            _ => {}
        });
        for (lhs, obj) in news {
            let hctx = selector.select_heap(self.program, &mut self.interner, ctx, obj);
            let cs = self.cs_obj(hctx, obj);
            let ptr = self.var_ptr(ctx, lhs);
            self.enqueue_one(ptr, cs.0);
        }
        for (rhs, lhs, kind) in assigns {
            let s = self.var_ptr(ctx, rhs);
            let t = self.var_ptr(ctx, lhs);
            self.add_edge(s, t, kind);
        }
        for site in static_calls {
            let callee = self.program.call_site(site).target();
            let callee_ctx = selector.select_call(
                self.program,
                &mut self.interner,
                CallInfo {
                    caller_ctx: ctx,
                    site,
                    callee,
                    recv: None,
                },
            );
            self.add_call_edge(selector, plugin, ctx, site, callee_ctx, callee);
        }
    }

    /// Replays the `[Param]`/`[Return]` PFG edges of one surviving call
    /// edge (part 2 of the post-reset sweep) — the body `add_call_edge`
    /// runs after its dedup check.
    fn replay_call_flows<P: Plugin>(
        &mut self,
        plugin: &P,
        caller_ctx: CtxId,
        site: CallSiteId,
        callee_ctx: CtxId,
        callee: MethodId,
    ) {
        let cs = self.program.call_site(site);
        let m = self.program.method(callee);
        for (k, &param) in m.params().iter().enumerate() {
            let arg = cs.args()[k];
            let s = self.var_ptr(caller_ctx, arg);
            let t = self.var_ptr(callee_ctx, param);
            self.add_edge(s, t, EdgeKind::Param);
        }
        if let (Some(lhs), Some(ret)) = (cs.lhs(), m.ret_var()) {
            if !plugin.is_return_cut(callee) {
                let s = self.var_ptr(callee_ctx, ret);
                let t = self.var_ptr(caller_ctx, lhs);
                self.add_edge(s, t, EdgeKind::Return(callee));
            }
        }
    }

    /// Replays the delta's added statements against every context their
    /// enclosing (old) method is currently reachable under. Statements in
    /// methods not (yet) reachable need no replay: if an added call makes
    /// such a method reachable during the drain, `add_reachable` visits its
    /// full patched body, added statements included.
    fn replay_additions<S: ContextSelector, P: Plugin>(
        &mut self,
        selector: &S,
        plugin: &P,
        fx: &DeltaEffects,
    ) {
        if fx.added_stmts.is_empty() {
            return;
        }
        let mut ctxs_of: FxHashMap<MethodId, Vec<CtxId>> = FxHashMap::default();
        for &(ctx, m) in &self.reachable_log {
            ctxs_of.entry(m).or_default().push(ctx);
        }
        for (m, stmt) in &fx.added_stmts {
            let Some(ctxs) = ctxs_of.get(m) else { continue };
            for &ctx in &ctxs.clone() {
                self.replay_one_stmt(selector, plugin, ctx, stmt);
            }
        }
    }

    /// Derives the facts one added statement seeds under one reachable
    /// context, against the current (rebased) state.
    fn replay_one_stmt<S: ContextSelector, P: Plugin>(
        &mut self,
        selector: &S,
        plugin: &P,
        ctx: CtxId,
        stmt: &Stmt,
    ) {
        let program = self.program;
        match *stmt {
            Stmt::New { lhs, obj } => {
                let hctx = selector.select_heap(program, &mut self.interner, ctx, obj);
                let cs = self.cs_obj(hctx, obj);
                let ptr = self.var_ptr(ctx, lhs);
                self.enqueue_one(ptr, cs.0);
            }
            Stmt::Assign { lhs, rhs } => {
                let s = self.var_ptr(ctx, rhs);
                let t = self.var_ptr(ctx, lhs);
                self.add_edge(s, t, EdgeKind::Assign);
            }
            Stmt::Cast(id) => {
                let c = program.cast(id);
                let s = self.var_ptr(ctx, c.rhs());
                let t = self.var_ptr(ctx, c.lhs());
                self.add_edge(s, t, EdgeKind::Cast(id));
            }
            Stmt::Load(id) => {
                let site = program.load(id);
                let (lhs, base, field) = (site.lhs(), site.base(), site.field());
                let Some(b) = self.find_ptr(PtrKey::Var(ctx, base)) else {
                    return;
                };
                let objs = self.slots.pts(self.reps.find(b.0)).clone();
                let t = self.var_ptr(ctx, lhs);
                for o in objs.iter() {
                    let s = self.field_ptr(CsObjId(o), field);
                    self.add_edge(s, t, EdgeKind::Load(id));
                }
            }
            Stmt::Store(id) => {
                if plugin.is_store_cut(id) {
                    return;
                }
                let site = program.store(id);
                let (rhs, base, field) = (site.rhs(), site.base(), site.field());
                let Some(b) = self.find_ptr(PtrKey::Var(ctx, base)) else {
                    return;
                };
                let objs = self.slots.pts(self.reps.find(b.0)).clone();
                let s = self.var_ptr(ctx, rhs);
                for o in objs.iter() {
                    let t = self.field_ptr(CsObjId(o), field);
                    self.add_edge(s, t, EdgeKind::Store(id));
                }
            }
            Stmt::Call(id) => {
                let cs = program.call_site(id);
                if cs.kind() == CallKind::Static {
                    let callee = cs.target();
                    let callee_ctx = selector.select_call(
                        program,
                        &mut self.interner,
                        CallInfo {
                            caller_ctx: ctx,
                            site: id,
                            callee,
                            recv: None,
                        },
                    );
                    self.add_call_edge(selector, plugin, ctx, id, callee_ctx, callee);
                } else if let Some(recv) = cs.recv() {
                    let Some(b) = self.find_ptr(PtrKey::Var(ctx, recv)) else {
                        return;
                    };
                    let objs = self.slots.pts(self.reps.find(b.0)).clone();
                    for o in objs.iter() {
                        self.process_instance_call(selector, plugin, ctx, id, CsObjId(o));
                    }
                }
            }
            _ => {}
        }
    }
}

impl<'p, S: ContextSelector, P: Plugin> Solver<'p, S, P> {
    /// Incrementally re-solves a delta-patched program on top of a
    /// completed base result.
    ///
    /// `prev` is the base solve's result (its state is consumed and
    /// rebased), `patched` the program produced by
    /// [`csc_ir::ProgramDelta::apply`] on the base program, and `fx` the
    /// effects summary `apply` returned. `selector` must be the same
    /// context policy the base ran under (same selector, same parameters)
    /// and `plugin` the plugin instance the base solve returned — its
    /// [`Plugin::rebase`] hook decides whether derived plugin state
    /// survives the delta.
    ///
    /// On [`Resolved::Incremental`], the result's projections are
    /// bit-identical to a from-scratch solve of `patched` (enforced by
    /// `tests/differential_incremental.rs`), and
    /// [`super::SolverStats::incr_resolves`] / `resolve_secs` are stamped.
    /// On [`Resolved::Fallback`], nothing was solved — the caller runs a
    /// fresh full solve and records the reason.
    pub fn resolve(
        prev: PtaResult<'_>,
        patched: &'p Program,
        fx: &DeltaEffects,
        selector: S,
        mut plugin: P,
        budget: Budget,
    ) -> Resolved<'p, P>
    where
        P: Send + Sync,
    {
        let start = Instant::now();
        if prev.status != SolveStatus::Completed {
            return Resolved::Fallback(FallbackReason::BaseIncomplete, plugin);
        }
        let base = prev.state.program;
        if !base.dispatch_stable_under(patched) {
            return Resolved::Fallback(FallbackReason::DispatchChanged, plugin);
        }
        if !plugin.rebase(base, patched, fx) {
            return Resolved::Fallback(FallbackReason::CscObligations, plugin);
        }
        let taint = if fx.additions_only() {
            TaintSet::default()
        } else {
            match compute_taint(&prev.state, fx) {
                Ok(t) => t,
                Err(()) => return Resolved::Fallback(FallbackReason::SccStructure, plugin),
            }
        };

        let mut state = rebase_state(prev.state, patched, budget, start);
        state.emit_events = plugin.wants_events();
        if !taint.ptrs.is_empty() || !taint.call_edges.is_empty() {
            state.reset_cone(&taint);
            state.replay_after_reset(&selector, &plugin);
        }
        state.replay_additions(&selector, &plugin, fx);

        let (mut res, plugin) = Solver {
            state,
            selector,
            plugin,
        }
        .drain(start);
        res.state.stats.incr_resolves += 1;
        res.state.stats.incr_fallback_reason = None;
        res.state.stats.resolve_secs = start.elapsed().as_secs_f64();
        Resolved::Incremental(res, plugin)
    }
}
