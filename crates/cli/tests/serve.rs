//! End-to-end exercise of the `csc serve` daemon over its stdio JSON
//! protocol: load a benchmark, fold in a delta, query, then inject a
//! worker panic into the next re-solve and watch the daemon degrade
//! gracefully — answering from the last-good snapshot — and recover on
//! the following resolve. One process for the whole conversation; the
//! injected panic must not kill it.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

struct Daemon {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Daemon {
    fn spawn() -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_csc"))
            .args([
                "serve",
                "--analysis",
                "ci",
                "--threads",
                "2",
                "--engine",
                "bsp",
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .env_remove("CSC_FAULT")
            .spawn()
            .expect("spawn csc serve");
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        Daemon {
            child,
            stdin,
            stdout,
        }
    }

    /// Sends one request line and returns the reply line.
    fn roundtrip(&mut self, req: &str) -> String {
        writeln!(self.stdin, "{req}").expect("daemon accepts request");
        self.stdin.flush().expect("flush");
        let mut line = String::new();
        self.stdout.read_line(&mut line).expect("daemon replies");
        assert!(
            !line.is_empty(),
            "daemon closed its stdout instead of replying to {req}"
        );
        line.trim().to_owned()
    }
}

/// Asserts `reply` contains the literal `"key":value` fragment.
fn has(reply: &str, fragment: &str) {
    assert!(
        reply.contains(fragment),
        "expected `{fragment}` in reply: {reply}"
    );
}

#[test]
fn serve_survives_worker_panic_and_recovers() {
    let mut d = Daemon::spawn();

    // Queries before any load are typed protocol errors, not crashes.
    let r = d.roundtrip(r#"{"cmd":"query","kind":"call-graph"}"#);
    has(&r, r#""ok":false"#);
    has(&r, r#""kind":"bad-request""#);

    let r = d.roundtrip(r#"{"cmd":"load","bench":"hsqldb"}"#);
    has(&r, r#""ok":true"#);
    has(&r, r#""degraded":false"#);

    // Fold in one synthetic delta; the session advances.
    let r = d.roundtrip(r#"{"cmd":"resolve","seed":42}"#);
    has(&r, r#""ok":true"#);
    has(&r, r#""degraded":false"#);
    let healthy = d.roundtrip(r#"{"cmd":"query","kind":"call-graph"}"#);
    has(&healthy, r#""ok":true"#);
    has(&healthy, r#""degraded":false"#);

    // Arm a worker panic through the protocol, then ask for a re-solve.
    // The solve poisons; the daemon answers from the last-good snapshot.
    let r = d.roundtrip(r#"{"cmd":"fault","spec":"worker-round:1:panic"}"#);
    has(&r, r#""ok":true"#);
    let degraded = d.roundtrip(r#"{"cmd":"resolve","seed":43}"#);
    has(&degraded, r#""ok":true"#);
    has(&degraded, r#""degraded":true"#);
    has(&degraded, r#""kind":"poisoned""#);

    // Queries keep working, flagged degraded, with the pre-fault counts.
    let stale = d.roundtrip(r#"{"cmd":"query","kind":"call-graph"}"#);
    has(&stale, r#""degraded":true"#);
    let count = |reply: &str| {
        let tail = reply.split(r#""edges":"#).nth(1).expect("edges field");
        tail.chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
    };
    assert_eq!(
        count(&healthy),
        count(&stale),
        "degraded answers come from the last-good snapshot"
    );

    // The fault is spent; re-sending the same edit recovers the session
    // (via a from-scratch solve, since the poisoned outcome was dropped).
    let r = d.roundtrip(r#"{"cmd":"resolve","seed":43}"#);
    has(&r, r#""ok":true"#);
    has(&r, r#""degraded":false"#);
    has(&r, r#""resolve":"full""#);
    let r = d.roundtrip(r#"{"cmd":"query","kind":"call-graph"}"#);
    has(&r, r#""degraded":false"#);

    // Bookkeeping made it through the whole conversation.
    let r = d.roundtrip(r#"{"cmd":"stats"}"#);
    has(&r, r#""resolves_ok":2"#);
    has(&r, r#""resolves_failed":1"#);
    has(&r, r#""request_panics":0"#);

    let r = d.roundtrip(r#"{"cmd":"shutdown"}"#);
    has(&r, r#""shutdown":true"#);
    let status = d.child.wait().expect("daemon exits");
    assert!(status.success(), "daemon must exit cleanly after shutdown");
}
