//! `csc` — command-line driver for the cut-shortcut pointer analysis.
//!
//! ```text
//! csc analyze <file.mj> [--analysis ci|2obj|2type|2cs|zipper|csc|csc-doop|csc-hybrid]
//!                       [--budget <secs>] [--threads <n>] [--engine async|bsp]
//!                       [--pt <Class.method.var>] [--metrics]
//! csc dump-ir <file.mj>
//! csc run     <file.mj>            # concrete execution + trace summary
//! csc bench   <name>               # analyze a built-in suite benchmark
//! csc suite                        # list built-in benchmarks
//! ```
//!
//! `--threads` selects the propagation engine: `1` runs the sequential
//! solver, `0` (the default, also via `CSC_THREADS`) resolves to the
//! machine's available parallelism, and `n >= 2` runs a parallel engine
//! with `n` workers — the async work-stealing engine by default,
//! `--engine bsp` (or `CSC_ENGINE=bsp`) for the bulk-synchronous rounds.
//! Projected results are identical for every thread count and engine.

use std::process::ExitCode;
use std::time::Duration;

use csc_core::{run_analysis_opts, Analysis, Budget, Engine, PrecisionMetrics, SolverOptions};
use csc_interp::{execute, InterpConfig};
use csc_ir::Program;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  csc analyze <file.mj> [--analysis ci|2obj|2type|2cs|zipper|csc|csc-doop|csc-hybrid] \
         [--budget <secs>] [--threads <n>] [--engine async|bsp] [--pt <Class.method.var>] \
         [--metrics]\n  csc dump-ir <file.mj>\n  \
         csc run <file.mj>\n  csc bench <name> [--analysis ...]\n  csc suite"
    );
    ExitCode::from(2)
}

fn parse_analysis(s: &str) -> Option<Analysis> {
    Some(match s {
        "ci" => Analysis::Ci,
        "2obj" => Analysis::KObj(2),
        "2type" => Analysis::KType(2),
        "2cs" => Analysis::KCallSite(2),
        "zipper" => Analysis::ZipperE,
        "csc" => Analysis::CutShortcut,
        "csc-doop" => Analysis::CutShortcutWith(csc_core::CscConfig::doop()),
        "csc-hybrid" => Analysis::CscHybrid,
        _ => return None,
    })
}

fn load(path: &str) -> Result<Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    csc_frontend::compile(&src).map_err(|e| format!("{path}:{e}"))
}

fn analyze(
    program: &Program,
    analysis: Analysis,
    budget: Budget,
    threads: usize,
    engine_choice: Option<Engine>,
    pt_query: Option<&str>,
    metrics: bool,
) {
    let label = analysis.label().to_owned();
    let mut opts = SolverOptions::default().with_threads(threads);
    if let Some(e) = engine_choice {
        opts = opts.with_engine(e);
    }
    let outcome = run_analysis_opts(program, analysis, budget, opts);
    if !outcome.completed() {
        println!("{label}: budget exhausted after {:?}", outcome.total_time);
        return;
    }
    let stats = &outcome.result.state.stats;
    let engine = if stats.threads > 1 {
        // The Amdahl split of the run: time inside parallel phases vs the
        // coordinator (commits, plugin events, graph growth, SCC epochs).
        let total = stats.parallel_secs + stats.coordinator_secs;
        let coord_share = if total > 0.0 {
            stats.coordinator_secs / total * 100.0
        } else {
            0.0
        };
        if stats.pause_count > 0 {
            // The async engine pauses (quiescence points) instead of
            // running fixed rounds; steals are batch migrations between
            // shard owners.
            format!(
                "{} threads, {} pauses, {} steals, {:.0}% coordinator",
                stats.threads, stats.pause_count, stats.steal_count, coord_share
            )
        } else {
            format!(
                "{} threads, {} rounds, {:.0}% coordinator",
                stats.threads, stats.parallel_rounds, coord_share
            )
        }
    } else {
        "sequential".to_owned()
    };
    println!(
        "{label}: completed in {:?} ({} reachable methods, {} call edges, {engine})",
        outcome.total_time,
        outcome.result.state.reachable_methods_projected().len(),
        outcome.result.state.call_edges_projected().len(),
    );
    if let Some(stats) = &outcome.csc {
        println!(
            "  cut: {} store sites, {} returns; shortcuts: {} ({} store, {} load, {} relay, \
             {} container, {} local-flow); involved methods: {}",
            stats.cut_store_sites,
            stats.cut_return_methods,
            stats.shortcut_edges(),
            stats.shortcut_store_edges,
            stats.shortcut_load_edges,
            stats.relay_edges,
            stats.container_edges,
            stats.local_flow_edges,
            stats.involved_methods.len()
        );
    }
    if let Some(selected) = &outcome.selected {
        println!("  Zipper-e selected {} methods", selected.len());
    }
    if metrics {
        let m = PrecisionMetrics::compute(&outcome.result);
        println!(
            "  #fail-cast={} #reach-mtd={} #poly-call={} #call-edge={}",
            m.fail_casts, m.reach_methods, m.poly_calls, m.call_edges
        );
    }
    if let Some(q) = pt_query {
        let parts: Vec<&str> = q.split('.').collect();
        let [class, method, var] = parts[..] else {
            eprintln!("  --pt expects Class.method.var");
            return;
        };
        let Some(m) = program.method_by_qualified_name(&format!("{class}.{method}")) else {
            eprintln!("  unknown method {class}.{method}");
            return;
        };
        let Some(v) = program
            .method(m)
            .vars()
            .iter()
            .copied()
            .find(|&v| program.var(v).name() == var)
        else {
            eprintln!("  unknown variable {var} in {class}.{method}");
            return;
        };
        let mut pt: Vec<String> = outcome
            .result
            .state
            .pt_var_projected(v)
            .into_iter()
            .map(|o| {
                format!(
                    "{} ({})",
                    program.obj(o).label(),
                    program.class(program.obj(o).class()).name()
                )
            })
            .collect();
        pt.sort();
        println!("  pt({q}) = {pt:#?}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };

    // Flag parsing shared by `analyze` and `bench`.
    let mut analysis = Analysis::CutShortcut;
    let mut budget = Budget::unlimited();
    // Propagation threads: `--threads` wins, then `CSC_THREADS`, then auto
    // (0 = available parallelism).
    let mut threads: usize = std::env::var("CSC_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    // Parallel engine: `--engine` wins; unset defers to `CSC_ENGINE`
    // (then the async default) inside the solver.
    let mut engine_choice: Option<Engine> = None;
    let mut pt_query: Option<String> = None;
    let mut metrics = false;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                let Some(v) = it.next() else { return usage() };
                match v.parse::<usize>() {
                    Ok(n) => threads = n,
                    Err(_) => return usage(),
                }
            }
            "--engine" => {
                let Some(v) = it.next() else { return usage() };
                match v.as_str() {
                    "async" => engine_choice = Some(Engine::Async),
                    "bsp" => engine_choice = Some(Engine::Bsp),
                    other => {
                        eprintln!("unknown engine `{other}` (expected async|bsp)");
                        return usage();
                    }
                }
            }
            "--analysis" => {
                let Some(v) = it.next() else { return usage() };
                match parse_analysis(v) {
                    Some(a) => analysis = a,
                    None => {
                        eprintln!("unknown analysis `{v}`");
                        return usage();
                    }
                }
            }
            "--budget" => {
                let Some(v) = it.next() else { return usage() };
                match v.parse::<u64>() {
                    Ok(secs) => budget = Budget::with_time(Duration::from_secs(secs)),
                    Err(_) => return usage(),
                }
            }
            "--pt" => {
                let Some(v) = it.next() else { return usage() };
                pt_query = Some(v.clone());
            }
            "--metrics" => metrics = true,
            other => positional.push(other.to_owned()),
        }
    }

    match cmd.as_str() {
        "analyze" => {
            let Some(path) = positional.first() else {
                return usage();
            };
            match load(path) {
                Ok(program) => {
                    analyze(
                        &program,
                        analysis,
                        budget,
                        threads,
                        engine_choice,
                        pt_query.as_deref(),
                        metrics,
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "dump-ir" => {
            let Some(path) = positional.first() else {
                return usage();
            };
            match load(path) {
                Ok(program) => {
                    print!("{}", program.display_program());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "run" => {
            let Some(path) = positional.first() else {
                return usage();
            };
            match load(path) {
                Ok(program) => {
                    match execute(&program, InterpConfig::default()) {
                        Ok(t) => println!(
                            "executed: {} steps, {} allocations, {} reached methods, \
                             {} call edges, {} failed casts",
                            t.steps,
                            t.allocations,
                            t.reached_methods.len(),
                            t.call_edges.len(),
                            t.failed_casts
                        ),
                        Err(e) => println!("{e}"),
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "bench" => {
            let Some(name) = positional.first() else {
                return usage();
            };
            match csc_workloads::by_name(name) {
                Some(b) => {
                    let program = b.compile();
                    analyze(
                        &program,
                        analysis,
                        budget,
                        threads,
                        engine_choice,
                        pt_query.as_deref(),
                        metrics,
                    );
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("unknown benchmark `{name}` (try `csc suite`)");
                    ExitCode::FAILURE
                }
            }
        }
        "suite" => {
            for b in csc_workloads::suite() {
                let program = b.compile();
                println!(
                    "{:<11} {:>5} classes {:>6} methods {:>7} statements",
                    b.name,
                    program.classes().len(),
                    program.methods().len(),
                    program.stmt_count()
                );
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
