//! `csc` — command-line driver for the cut-shortcut pointer analysis.
//!
//! ```text
//! csc analyze <file.mj> [--analysis ci|2obj|2type|2cs|zipper|csc|csc-doop|csc-hybrid]
//!                       [--budget <secs>] [--threads <n>] [--engine async|bsp]
//!                       [--pt <Class.method.var>] [--metrics]
//! csc dump-ir <file.mj>
//! csc run     <file.mj>            # concrete execution + trace summary
//! csc bench   <name>               # analyze a built-in suite benchmark
//! csc suite                        # list built-in benchmarks
//! csc resolve <file.mj|name>       # incremental re-solve across deltas
//!             [--delta <d.bin>]... [--gen-deltas <n>] [--seed <s>]
//!             [--analysis ...] [--threads ...] [--metrics]
//! csc serve   [--analysis ...] [--threads <n>] [--engine async|bsp]
//!             [--budget-ms <ms>]   # resident line-delimited JSON daemon
//! ```
//!
//! `resolve` applies a sequence of program deltas (binary
//! [`csc_ir::ProgramDelta`] files via repeated `--delta`, or `--gen-deltas
//! <n>` seeded synthetic edits) and re-solves incrementally after each,
//! falling back to a full solve — with the reason printed — when a delta
//! breaks the incremental preconditions. Completed answers are memoized in
//! the on-disk solved-result cache (`target/csc-results`, keyed by program
//! content + analysis + options); a warm re-run answers from the cache
//! without running propagation at all. `CSC_RESULT_CACHE=0` opts out,
//! `CSC_RESULT_CACHE_DIR` redirects.
//!
//! `--threads` selects the propagation engine: `1` runs the sequential
//! solver, `0` (the default, also via `CSC_THREADS`) resolves to the
//! machine's available parallelism, and `n >= 2` runs a parallel engine
//! with `n` workers — the async work-stealing engine by default,
//! `--engine bsp` (or `CSC_ENGINE=bsp`) for the bulk-synchronous rounds.
//! Projected results are identical for every thread count and engine.
//!
//! `serve` starts the resident analysis daemon: a long-lived loop over a
//! line-delimited JSON protocol on stdin/stdout with per-request budgets,
//! request-scoped panic isolation, and graceful degradation to the
//! last-good snapshot. See [`serve`] for the protocol.

mod serve;

use std::process::ExitCode;
use std::time::Duration;

use csc_core::{
    resolve_analysis_opts, run_analysis_opts, Analysis, Budget, Engine, PrecisionMetrics,
    SolverOptions,
};
use csc_interp::{execute, InterpConfig};
use csc_ir::Program;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  csc analyze <file.mj> [--analysis ci|2obj|2type|2cs|zipper|csc|csc-doop|csc-hybrid] \
         [--budget <secs>] [--threads <n>] [--engine async|bsp] [--pt <Class.method.var>] \
         [--metrics]\n  csc dump-ir <file.mj>\n  \
         csc run <file.mj>\n  csc bench <name> [--analysis ...]\n  csc suite\n  \
         csc resolve <file.mj|name> [--delta <d.bin>]... [--gen-deltas <n>] [--seed <s>] \
         [--analysis ...] [--threads <n>] [--metrics]\n  \
         csc serve [--analysis ...] [--threads <n>] [--engine async|bsp] [--budget-ms <ms>]"
    );
    ExitCode::from(2)
}

fn parse_analysis(s: &str) -> Option<Analysis> {
    Some(match s {
        "ci" => Analysis::Ci,
        "2obj" => Analysis::KObj(2),
        "2type" => Analysis::KType(2),
        "2cs" => Analysis::KCallSite(2),
        "zipper" => Analysis::ZipperE,
        "csc" => Analysis::CutShortcut,
        "csc-doop" => Analysis::CutShortcutWith(csc_core::CscConfig::doop()),
        "csc-hybrid" => Analysis::CscHybrid,
        _ => return None,
    })
}

fn load(path: &str) -> Result<Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    csc_frontend::compile(&src).map_err(|e| format!("{path}:{e}"))
}

fn analyze(
    program: &Program,
    analysis: Analysis,
    budget: Budget,
    threads: usize,
    engine_choice: Option<Engine>,
    pt_query: Option<&str>,
    metrics: bool,
) -> ExitCode {
    let label = analysis.label().to_owned();
    let mut opts = SolverOptions::default().with_threads(threads);
    if let Some(e) = engine_choice {
        opts = opts.with_engine(e);
    }
    let outcome = run_analysis_opts(program, analysis, budget, opts);
    if !outcome.completed() {
        report_incomplete(&label, &outcome);
        return ExitCode::FAILURE;
    }
    let stats = &outcome.result.state.stats;
    let engine = if stats.threads > 1 {
        // The Amdahl split of the run: time inside parallel phases vs the
        // coordinator (commits, plugin events, graph growth, SCC epochs).
        let total = stats.parallel_secs + stats.coordinator_secs;
        let coord_share = if total > 0.0 {
            stats.coordinator_secs / total * 100.0
        } else {
            0.0
        };
        if stats.pause_count > 0 {
            // The async engine pauses (quiescence points) instead of
            // running fixed rounds; steals are batch migrations between
            // shard owners.
            format!(
                "{} threads, {} pauses, {} steals, {:.0}% coordinator",
                stats.threads, stats.pause_count, stats.steal_count, coord_share
            )
        } else {
            format!(
                "{} threads, {} rounds, {:.0}% coordinator",
                stats.threads, stats.parallel_rounds, coord_share
            )
        }
    } else {
        "sequential".to_owned()
    };
    println!(
        "{label}: completed in {:?} ({} reachable methods, {} call edges, {engine})",
        outcome.total_time,
        outcome.result.state.reachable_methods_projected().len(),
        outcome.result.state.call_edges_projected().len(),
    );
    if let Some(stats) = &outcome.csc {
        println!(
            "  cut: {} store sites, {} returns; shortcuts: {} ({} store, {} load, {} relay, \
             {} container, {} local-flow); involved methods: {}",
            stats.cut_store_sites,
            stats.cut_return_methods,
            stats.shortcut_edges(),
            stats.shortcut_store_edges,
            stats.shortcut_load_edges,
            stats.relay_edges,
            stats.container_edges,
            stats.local_flow_edges,
            stats.involved_methods.len()
        );
    }
    if let Some(selected) = &outcome.selected {
        println!("  Zipper-e selected {} methods", selected.len());
    }
    if metrics {
        let m = PrecisionMetrics::compute(&outcome.result);
        println!(
            "  #fail-cast={} #reach-mtd={} #poly-call={} #call-edge={}",
            m.fail_casts, m.reach_methods, m.poly_calls, m.call_edges
        );
    }
    if let Some(q) = pt_query {
        let parts: Vec<&str> = q.split('.').collect();
        let [class, method, var] = parts[..] else {
            eprintln!("  --pt expects Class.method.var");
            return ExitCode::FAILURE;
        };
        let Some(m) = program.method_by_qualified_name(&format!("{class}.{method}")) else {
            eprintln!("  unknown method {class}.{method}");
            return ExitCode::FAILURE;
        };
        let Some(v) = program
            .method(m)
            .vars()
            .iter()
            .copied()
            .find(|&v| program.var(v).name() == var)
        else {
            eprintln!("  unknown variable {var} in {class}.{method}");
            return ExitCode::FAILURE;
        };
        let mut pt: Vec<String> = outcome
            .result
            .state
            .pt_var_projected(v)
            .into_iter()
            .map(|o| {
                format!(
                    "{} ({})",
                    program.obj(o).label(),
                    program.class(program.obj(o).class()).name()
                )
            })
            .collect();
        pt.sort();
        println!("  pt({q}) = {pt:#?}");
    }
    ExitCode::SUCCESS
}

/// Prints why an incomplete solve stopped: a typed failure (poisoned
/// state or an injected fault) when one is recorded, budget exhaustion
/// otherwise.
fn report_incomplete(label: &str, outcome: &csc_core::AnalysisOutcome<'_>) {
    match &outcome.result.error {
        Some(e) => println!("{label}: solve failed after {:?}: {e}", outcome.total_time),
        None => println!("{label}: budget exhausted after {:?}", outcome.total_time),
    }
}

/// Prints one metrics line.
fn print_metrics(m: &PrecisionMetrics) {
    println!(
        "  #fail-cast={} #reach-mtd={} #poly-call={} #call-edge={}",
        m.fail_casts, m.reach_methods, m.poly_calls, m.call_edges
    );
}

/// The `resolve` subcommand: apply a delta chain, re-solving incrementally
/// after each step, with the final answer memoized in (and, when warm,
/// answered from) the on-disk solved-result cache.
#[allow(clippy::too_many_arguments)]
fn resolve_cmd(
    base: Program,
    analysis: Analysis,
    budget: Budget,
    threads: usize,
    engine_choice: Option<Engine>,
    metrics: bool,
    delta_files: &[String],
    gen_deltas: usize,
    seed: u64,
) -> ExitCode {
    let mut opts = SolverOptions::default().with_threads(threads);
    if let Some(e) = engine_choice {
        opts = opts.with_engine(e);
    }
    // Build the whole chain of patched programs up front; a delta that
    // does not apply should fail before any solving starts.
    let mut programs: Vec<Program> = vec![base];
    let mut effects: Vec<csc_ir::DeltaEffects> = Vec::new();
    if gen_deltas > 0 {
        for step in 0..gen_deltas {
            let cfg = csc_workloads::DeltaGenConfig {
                seed: seed.wrapping_add(step as u64),
                actions: 8,
                removals: true,
            };
            let current = programs.last().expect("chain starts non-empty");
            let delta = csc_workloads::generate_delta(current, &cfg);
            match delta.apply(current) {
                Ok((p, fx)) => {
                    programs.push(p);
                    effects.push(fx);
                }
                Err(e) => {
                    eprintln!("generated delta {step} failed to apply: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    } else {
        for path in delta_files {
            let bytes = match std::fs::read(path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let delta = match csc_ir::ProgramDelta::from_bytes(&bytes) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let current = programs.last().expect("chain starts non-empty");
            match delta.apply(current) {
                Ok((p, fx)) => {
                    programs.push(p);
                    effects.push(fx);
                }
                Err(e) => {
                    eprintln!("{path}: delta does not apply: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    let label = analysis.label().to_owned();
    let final_program = programs.last().expect("chain starts non-empty");
    let final_key = csc_core::result_cache_key(final_program, &analysis, &opts);
    let cache_dir = csc_core::result_cache_dir();
    // Warm path: an unchanged (program, analysis, options) triple answers
    // from disk without running propagation at all.
    if csc_core::result_cache_enabled() {
        if let Some(summary) = csc_core::load_result(&cache_dir, final_key) {
            println!(
                "{label}: result cache hit ({} reachable methods, {} call edges, 0 propagations)",
                summary.reachable.len(),
                summary.call_edges.len()
            );
            if metrics {
                print_metrics(&summary.metrics);
            }
            return ExitCode::SUCCESS;
        }
    }
    // Cold path: solve the base once, then fold each delta incrementally.
    let mut outcome = run_analysis_opts(&programs[0], analysis.clone(), budget, opts);
    if !outcome.completed() {
        report_incomplete(&label, &outcome);
        return ExitCode::FAILURE;
    }
    println!("{label}: base solve completed in {:?}", outcome.total_time);
    for (i, fx) in effects.iter().enumerate() {
        outcome = resolve_analysis_opts(
            outcome,
            &programs[i + 1],
            fx,
            analysis.clone(),
            budget,
            opts,
        );
        if !outcome.completed() {
            match &outcome.result.error {
                Some(e) => println!("{label}: solve failed at delta {i}: {e}"),
                None => println!("{label}: budget exhausted at delta {i}"),
            }
            return ExitCode::FAILURE;
        }
        let stats = &outcome.result.state.stats;
        match stats.incr_fallback_reason {
            None => println!(
                "  delta {i}: incremental re-solve in {:.3}s",
                stats.resolve_secs
            ),
            Some(r) => println!(
                "  delta {i}: full-solve fallback ({r}) in {:.3}s",
                stats.resolve_secs
            ),
        }
    }
    let stats = &outcome.result.state.stats;
    println!(
        "{label}: final ({} reachable methods, {} call edges, {} propagations, \
         {} incremental re-solves, {} fallbacks)",
        outcome.result.state.reachable_methods_projected().len(),
        outcome.result.state.call_edges_projected().len(),
        stats.propagations,
        stats.incr_resolves,
        stats.incr_fallbacks,
    );
    if metrics {
        print_metrics(&PrecisionMetrics::compute(&outcome.result));
    }
    if csc_core::result_cache_enabled() {
        let summary = csc_core::SolvedSummary::capture(final_program, &outcome.result);
        csc_core::store_result(&cache_dir, final_key, &summary);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };

    // Flag parsing shared by `analyze` and `bench`.
    let mut analysis = Analysis::CutShortcut;
    let mut budget = Budget::unlimited();
    // Propagation threads: `--threads` wins, then `CSC_THREADS`, then auto
    // (0 = available parallelism).
    let mut threads: usize = std::env::var("CSC_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    // Parallel engine: `--engine` wins; unset defers to `CSC_ENGINE`
    // (then the async default) inside the solver.
    let mut engine_choice: Option<Engine> = None;
    let mut pt_query: Option<String> = None;
    // Default per-request wall-clock budget for `serve` (milliseconds).
    let mut budget_ms: Option<u64> = None;
    let mut metrics = false;
    let mut delta_files: Vec<String> = Vec::new();
    let mut gen_deltas: usize = 0;
    let mut seed: u64 = 1;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                let Some(v) = it.next() else { return usage() };
                match v.parse::<usize>() {
                    Ok(n) => threads = n,
                    Err(_) => return usage(),
                }
            }
            "--engine" => {
                let Some(v) = it.next() else { return usage() };
                match v.as_str() {
                    "async" => engine_choice = Some(Engine::Async),
                    "bsp" => engine_choice = Some(Engine::Bsp),
                    other => {
                        eprintln!("unknown engine `{other}` (expected async|bsp)");
                        return usage();
                    }
                }
            }
            "--analysis" => {
                let Some(v) = it.next() else { return usage() };
                match parse_analysis(v) {
                    Some(a) => analysis = a,
                    None => {
                        eprintln!("unknown analysis `{v}`");
                        return usage();
                    }
                }
            }
            "--budget" => {
                let Some(v) = it.next() else { return usage() };
                match v.parse::<u64>() {
                    Ok(secs) => budget = Budget::with_time(Duration::from_secs(secs)),
                    Err(_) => return usage(),
                }
            }
            "--budget-ms" => {
                let Some(v) = it.next() else { return usage() };
                match v.parse::<u64>() {
                    Ok(ms) => budget_ms = Some(ms),
                    Err(_) => return usage(),
                }
            }
            "--pt" => {
                let Some(v) = it.next() else { return usage() };
                pt_query = Some(v.clone());
            }
            "--metrics" => metrics = true,
            "--delta" => {
                let Some(v) = it.next() else { return usage() };
                delta_files.push(v.clone());
            }
            "--gen-deltas" => {
                let Some(v) = it.next() else { return usage() };
                match v.parse::<usize>() {
                    Ok(n) => gen_deltas = n,
                    Err(_) => return usage(),
                }
            }
            "--seed" => {
                let Some(v) = it.next() else { return usage() };
                match v.parse::<u64>() {
                    Ok(s) => seed = s,
                    Err(_) => return usage(),
                }
            }
            other => positional.push(other.to_owned()),
        }
    }

    match cmd.as_str() {
        "analyze" => {
            let Some(path) = positional.first() else {
                return usage();
            };
            match load(path) {
                Ok(program) => analyze(
                    &program,
                    analysis,
                    budget,
                    threads,
                    engine_choice,
                    pt_query.as_deref(),
                    metrics,
                ),
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "dump-ir" => {
            let Some(path) = positional.first() else {
                return usage();
            };
            match load(path) {
                Ok(program) => {
                    print!("{}", program.display_program());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "run" => {
            let Some(path) = positional.first() else {
                return usage();
            };
            match load(path) {
                Ok(program) => {
                    match execute(&program, InterpConfig::default()) {
                        Ok(t) => println!(
                            "executed: {} steps, {} allocations, {} reached methods, \
                             {} call edges, {} failed casts",
                            t.steps,
                            t.allocations,
                            t.reached_methods.len(),
                            t.call_edges.len(),
                            t.failed_casts
                        ),
                        Err(e) => println!("{e}"),
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "bench" => {
            let Some(name) = positional.first() else {
                return usage();
            };
            match csc_workloads::by_name(name) {
                Some(b) => {
                    let program = b.compile();
                    analyze(
                        &program,
                        analysis,
                        budget,
                        threads,
                        engine_choice,
                        pt_query.as_deref(),
                        metrics,
                    )
                }
                None => {
                    eprintln!("unknown benchmark `{name}` (try `csc suite`)");
                    ExitCode::FAILURE
                }
            }
        }
        "resolve" => {
            let Some(target) = positional.first() else {
                return usage();
            };
            if !delta_files.is_empty() && gen_deltas > 0 {
                eprintln!("--delta and --gen-deltas are mutually exclusive");
                return usage();
            }
            // A MiniJava file path, or a built-in benchmark name.
            let program = if std::path::Path::new(target).is_file() {
                match load(target) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                match csc_workloads::by_name(target) {
                    Some(b) => b.compile(),
                    None => {
                        eprintln!("`{target}` is neither a file nor a benchmark (try `csc suite`)");
                        return ExitCode::FAILURE;
                    }
                }
            };
            resolve_cmd(
                program,
                analysis,
                budget,
                threads,
                engine_choice,
                metrics,
                &delta_files,
                gen_deltas,
                seed,
            )
        }
        "serve" => serve::Server::new(analysis, threads, engine_choice, budget_ms).run(),
        "suite" => {
            for b in csc_workloads::suite() {
                let program = b.compile();
                println!(
                    "{:<11} {:>5} classes {:>6} methods {:>7} statements",
                    b.name,
                    program.classes().len(),
                    program.methods().len(),
                    program.stmt_count()
                );
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
