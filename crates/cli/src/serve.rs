//! `csc serve` — the resident analysis daemon (the "daemon half" of
//! analysis-as-a-service).
//!
//! A long-lived loop over a line-delimited JSON protocol on stdin/stdout:
//! one request object per line in, one reply object per line out. The
//! daemon holds a solved session resident — the program, the full solver
//! outcome (for incremental re-solves), and a published [`SolvedSummary`]
//! snapshot (for queries) — and is built on the typed failure plane:
//!
//! * **Per-request budgets.** `load` and `resolve` accept `budget_ms`
//!   (or inherit the `--budget-ms` default); budget exhaustion is a
//!   degraded reply, not a dead daemon.
//! * **Graceful degradation.** `resolve` is transactional: a timed-out,
//!   poisoned, or panicked re-solve leaves the resident program and the
//!   last-good snapshot untouched, answers from that snapshot, and marks
//!   the session `degraded: true` until a later resolve succeeds.
//! * **Request-scoped panic isolation.** Every request runs behind a
//!   panic guard (the solve paths through `run_analysis_guarded` /
//!   `resolve_analysis_guarded`, the dispatch itself behind one more
//!   `catch_unwind`), so one bad request cannot take the daemon down.
//!
//! ## Protocol
//!
//! ```text
//! {"cmd":"load","bench":"hsqldb"}                // or "path":"f.mj" / "source":"class ..."
//!     [,"analysis":"ci",...]["threads":2]["engine":"bsp"]["budget_ms":5000]
//! {"cmd":"resolve","seed":42}                    // seeded synthetic delta, or "delta_file":"d.bin"
//!     [,"actions":8]["budget_ms":5000]
//! {"cmd":"query","kind":"points-to","var":"Class.method.var"}
//! {"cmd":"query","kind":"call-graph"}
//! {"cmd":"query","kind":"casts"}
//! {"cmd":"stats"}
//! {"cmd":"fault","spec":"worker-round:1:panic"}  // or "clear"
//! {"cmd":"shutdown"}
//! ```
//!
//! Every reply carries `"ok"` and, once a session exists, `"degraded"`.
//! Programs are interned with `Box::leak` — the resident session needs
//! `'static` borrows, and a daemon's working set is the current program
//! plus one abandoned candidate per failed resolve (reclaimed only at
//! process exit; bounded in practice by the resolve failure count).

use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::time::Duration;

use csc_core::{
    decode_delta_guarded, resolve_analysis_guarded, run_analysis_guarded, Analysis,
    AnalysisOutcome, Budget, Engine, SolveError, SolvedSummary, SolverOptions,
};
use csc_ir::Program;

// ---- minimal JSON (the protocol is flat: string/number/bool values) ----

/// A protocol value: the flat subset of JSON the serve protocol uses.
#[derive(Clone, Debug, PartialEq)]
enum Val {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl Val {
    fn as_str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Val::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Parses one flat JSON object (`{"k":v,...}`). Nested containers are
/// rejected — no request needs them — and any syntax error is reported
/// with a human-readable message.
fn parse_object(line: &str) -> Result<BTreeMap<String, Val>, String> {
    let mut p = Parser {
        b: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let val = p.value()?;
            map.insert(key, val);
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err("expected `,` or `}`".into()),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.b.len() {
        return Err("trailing bytes after object".into());
    }
    Ok(map)
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.next() == Some(c) {
            Ok(())
        } else {
            Err(format!("expected `{}`", c as char))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.next() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + (d as char).to_digit(16).ok_or("bad \\u escape digit")?;
                        }
                        // Surrogates and other invalid scalars degrade to
                        // the replacement character; the protocol never
                        // round-trips them.
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err("bad escape".into()),
                },
                Some(c) if c < 0x80 => s.push(c as char),
                Some(c) => {
                    // Re-assemble UTF-8 multibyte sequences from the raw
                    // input (the line arrived as valid UTF-8).
                    let start = self.pos - 1;
                    let len = match c {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.b.len());
                    let chunk =
                        std::str::from_utf8(&self.b[start..end]).map_err(|_| "bad utf-8")?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn value(&mut self) -> Result<Val, String> {
        match self.peek() {
            Some(b'"') => Ok(Val::Str(self.string()?)),
            Some(b't') => self.lit("true", Val::Bool(true)),
            Some(b'f') => self.lit("false", Val::Bool(false)),
            Some(b'n') => self.lit("null", Val::Null),
            Some(b'{') | Some(b'[') => Err("nested containers are not part of the protocol".into()),
            Some(_) => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                ) {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.b[start..self.pos])
                    .ok()
                    .and_then(|s| s.parse::<f64>().ok())
                    .map(Val::Num)
                    .ok_or_else(|| "bad number".into())
            }
            None => Err("unexpected end of input".into()),
        }
    }

    fn lit(&mut self, word: &str, val: Val) -> Result<Val, String> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            Err(format!("expected `{word}`"))
        }
    }
}

/// Escapes a string for JSON output.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// An ordered JSON object under construction.
#[derive(Default)]
struct Reply {
    fields: Vec<(String, String)>,
}

impl Reply {
    fn ok(v: bool) -> Self {
        let mut r = Reply::default();
        r.push_raw("ok", if v { "true" } else { "false" });
        r
    }

    fn err(kind: &str, msg: &str) -> Self {
        let mut r = Reply::ok(false);
        r.push_str("kind", kind);
        r.push_str("error", msg);
        r
    }

    fn push_raw(&mut self, k: &str, v: impl Into<String>) -> &mut Self {
        self.fields.push((k.to_owned(), v.into()));
        self
    }

    fn push_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.push_raw(k, format!("\"{}\"", esc(v)))
    }

    fn push_num(&mut self, k: &str, v: impl Into<u64>) -> &mut Self {
        self.push_raw(k, v.into().to_string())
    }

    fn push_bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.push_raw(k, if v { "true" } else { "false" })
    }

    fn push_str_list(&mut self, k: &str, items: &[String]) -> &mut Self {
        let body: Vec<String> = items.iter().map(|s| format!("\"{}\"", esc(s))).collect();
        self.push_raw(k, format!("[{}]", body.join(",")))
    }

    fn render(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", esc(k)))
            .collect();
        format!("{{{}}}", body.join(","))
    }
}

// ---- the resident session ----

/// The daemon's resident state: the current program, the live solver
/// outcome (consumed and rebuilt per resolve), and the last-good
/// published snapshot queries answer from. `snapshot` always describes
/// `program` — both advance together, only on a fully successful solve.
struct Session {
    program: &'static Program,
    analysis: Analysis,
    opts: SolverOptions,
    /// The resident solver state. `None` after a failed resolve consumed
    /// it — the next resolve then falls back to a from-scratch solve.
    outcome: Option<AnalysisOutcome<'static>>,
    /// Last-good published projections; the query plane.
    snapshot: SolvedSummary,
    /// True while the snapshot is stale relative to the latest requested
    /// (but failed) edit; cleared by the next successful resolve.
    degraded: bool,
}

/// Counters reported by `stats`.
#[derive(Default)]
struct Counters {
    requests: u64,
    resolves_ok: u64,
    resolves_failed: u64,
    request_panics: u64,
}

/// The `serve` daemon state and defaults.
pub struct Server {
    session: Option<Session>,
    counters: Counters,
    default_analysis: Analysis,
    default_threads: usize,
    default_engine: Option<Engine>,
    default_budget_ms: Option<u64>,
}

/// Classifies a [`SolveError`] into the protocol's error kind.
fn error_kind(e: &SolveError) -> &'static str {
    match e {
        SolveError::Poisoned { .. } => "poisoned",
        SolveError::Fault { .. } => "fault",
    }
}

impl Server {
    /// Creates a server with the CLI-level defaults.
    pub fn new(
        analysis: Analysis,
        threads: usize,
        engine: Option<Engine>,
        budget_ms: Option<u64>,
    ) -> Self {
        Server {
            session: None,
            counters: Counters::default(),
            default_analysis: analysis,
            default_threads: threads,
            default_engine: engine,
            default_budget_ms: budget_ms,
        }
    }

    /// Runs the request loop until `shutdown` or EOF.
    pub fn run(mut self) -> ExitCode {
        let stdin = std::io::stdin();
        let mut stdout = std::io::stdout().lock();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            self.counters.requests += 1;
            let (reply, shutdown) = self.dispatch_guarded(&line);
            let _ = writeln!(stdout, "{}", reply.render());
            let _ = stdout.flush();
            if shutdown {
                return ExitCode::SUCCESS;
            }
        }
        ExitCode::SUCCESS
    }

    /// Request-scoped panic isolation: whatever a request does, the loop
    /// survives and answers. A panic escaping the handler (possible only
    /// outside the solver's own guards) may have consumed the resident
    /// outcome mid-flight; the session degrades rather than lies.
    fn dispatch_guarded(&mut self, line: &str) -> (Reply, bool) {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.dispatch(line))) {
            Ok(r) => r,
            Err(payload) => {
                self.counters.request_panics += 1;
                let msg = if let Some(s) = payload.downcast_ref::<&'static str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "request panicked".to_owned()
                };
                if let Some(sess) = self.session.as_mut() {
                    if sess.outcome.is_none() {
                        sess.degraded = true;
                    }
                }
                (Reply::err("panic", &msg), false)
            }
        }
    }

    fn dispatch(&mut self, line: &str) -> (Reply, bool) {
        let req = match parse_object(line) {
            Ok(m) => m,
            Err(e) => return (Reply::err("bad-request", &e), false),
        };
        let Some(cmd) = req.get("cmd").and_then(Val::as_str) else {
            return (Reply::err("bad-request", "missing `cmd`"), false);
        };
        match cmd {
            "load" => (self.load(&req), false),
            "resolve" => (self.resolve(&req), false),
            "query" => (self.query(&req), false),
            "stats" => (self.stats(), false),
            "fault" => (self.fault(&req), false),
            "shutdown" => {
                let mut r = Reply::ok(true);
                r.push_bool("shutdown", true);
                (r, true)
            }
            other => (
                Reply::err("bad-request", &format!("unknown cmd `{other}`")),
                false,
            ),
        }
    }

    /// Per-request budget: `budget_ms` field, else the server default.
    fn budget_of(&self, req: &BTreeMap<String, Val>) -> Budget {
        match req
            .get("budget_ms")
            .and_then(Val::as_u64)
            .or(self.default_budget_ms)
        {
            Some(ms) => Budget::with_time(Duration::from_millis(ms)),
            None => Budget::unlimited(),
        }
    }

    fn load(&mut self, req: &BTreeMap<String, Val>) -> Reply {
        let program = if let Some(name) = req.get("bench").and_then(Val::as_str) {
            match csc_workloads::by_name(name) {
                Some(b) => b.compile(),
                None => return Reply::err("bad-request", &format!("unknown benchmark `{name}`")),
            }
        } else if let Some(path) = req.get("path").and_then(Val::as_str) {
            match crate::load(path) {
                Ok(p) => p,
                Err(e) => return Reply::err("load", &e),
            }
        } else if let Some(src) = req.get("source").and_then(Val::as_str) {
            match csc_frontend::compile(src) {
                Ok(p) => p,
                Err(e) => return Reply::err("load", &e.to_string()),
            }
        } else {
            return Reply::err("bad-request", "load needs `bench`, `path`, or `source`");
        };
        let analysis = match req.get("analysis").and_then(Val::as_str) {
            Some(s) => match crate::parse_analysis(s) {
                Some(a) => a,
                None => return Reply::err("bad-request", &format!("unknown analysis `{s}`")),
            },
            None => self.default_analysis.clone(),
        };
        let threads = req
            .get("threads")
            .and_then(Val::as_u64)
            .map(|n| n as usize)
            .unwrap_or(self.default_threads);
        let mut opts = SolverOptions::default().with_threads(threads);
        let engine = match req.get("engine").and_then(Val::as_str) {
            Some("bsp") => Some(Engine::Bsp),
            Some("async") => Some(Engine::Async),
            Some(other) => return Reply::err("bad-request", &format!("unknown engine `{other}`")),
            None => self.default_engine,
        };
        if let Some(e) = engine {
            opts = opts.with_engine(e);
        }
        let program: &'static Program = Box::leak(Box::new(program));
        match run_analysis_guarded(program, analysis.clone(), self.budget_of(req), opts) {
            Ok(out) if out.completed() => {
                let snapshot = SolvedSummary::capture(program, &out.result);
                let mut r = Reply::ok(true);
                r.push_str("analysis", &out.result.analysis);
                r.push_num("reachable", snapshot.reachable.len() as u64);
                r.push_num("call_edges", snapshot.call_edges.len() as u64);
                r.push_bool("degraded", false);
                self.session = Some(Session {
                    program,
                    analysis,
                    opts,
                    outcome: Some(out),
                    snapshot,
                    degraded: false,
                });
                r
            }
            Ok(out) => {
                // A load that timed out or poisoned publishes nothing:
                // there is no last-good snapshot of *this* program to
                // degrade to. Any existing session stays untouched.
                let kind = match out.solve_error() {
                    Some(e) => error_kind(e),
                    None => "timeout",
                };
                let msg = out
                    .solve_error()
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| "budget exhausted".into());
                Reply::err(kind, &msg)
            }
            Err(e) => Reply::err(error_kind(&e), &e.to_string()),
        }
    }

    fn resolve(&mut self, req: &BTreeMap<String, Val>) -> Reply {
        let budget = self.budget_of(req);
        let Some(sess) = self.session.as_mut() else {
            return Reply::err("bad-request", "no session loaded");
        };
        // Build the delta against the *resident* program. Resolve is
        // transactional: nothing below advances the session until the
        // re-solve fully completes.
        let delta = if let Some(path) = req.get("delta_file").and_then(Val::as_str) {
            let bytes = match std::fs::read(path) {
                Ok(b) => b,
                Err(e) => return Reply::err("delta-decode", &format!("cannot read {path}: {e}")),
            };
            match decode_delta_guarded(&bytes) {
                Ok(d) => d,
                Err(e) => return Reply::err("delta-decode", &e),
            }
        } else if let Some(seed) = req.get("seed").and_then(Val::as_u64) {
            let cfg = csc_workloads::DeltaGenConfig {
                seed,
                actions: req
                    .get("actions")
                    .and_then(Val::as_u64)
                    .map(|n| n as usize)
                    .unwrap_or(8),
                removals: true,
            };
            csc_workloads::generate_delta(sess.program, &cfg)
        } else {
            return Reply::err("bad-request", "resolve needs `delta_file` or `seed`");
        };
        let (patched, fx) = match delta.apply(sess.program) {
            Ok(pair) => pair,
            Err(e) => return Reply::err("delta-apply", &e.to_string()),
        };
        let patched: &'static Program = Box::leak(Box::new(patched));
        // The attempt consumes the resident outcome; a previous failure
        // left `None`, in which case the candidate is solved from scratch.
        let attempt = match sess.outcome.take() {
            Some(prev) => resolve_analysis_guarded(
                prev,
                patched,
                &fx,
                sess.analysis.clone(),
                budget,
                sess.opts,
            ),
            None => run_analysis_guarded(patched, sess.analysis.clone(), budget, sess.opts),
        };
        match attempt {
            Ok(out) if out.completed() => {
                sess.program = patched;
                sess.snapshot = SolvedSummary::capture(patched, &out.result);
                sess.degraded = false;
                let stats = out.result.state.stats;
                sess.outcome = Some(out);
                let mut r = Reply::ok(true);
                r.push_bool("degraded", false);
                match stats.incr_fallback_reason {
                    None if stats.incr_resolves > 0 => r.push_str("resolve", "incremental"),
                    None => r.push_str("resolve", "full"),
                    Some(reason) => r.push_str("resolve", &format!("fallback:{reason}")),
                };
                r.push_num("reachable", sess.snapshot.reachable.len() as u64);
                r.push_num("call_edges", sess.snapshot.call_edges.len() as u64);
                self.counters.resolves_ok += 1;
                r
            }
            Ok(out) => {
                let (kind, msg) = match out.solve_error() {
                    Some(e) => (error_kind(e), e.to_string()),
                    None => ("timeout", "budget exhausted".to_owned()),
                };
                self.degraded_reply(kind, &msg)
            }
            Err(e) => {
                let (kind, msg) = (error_kind(&e), e.to_string());
                self.degraded_reply(kind, &msg)
            }
        }
    }

    /// The failed-resolve reply: the session keeps its last-good snapshot
    /// and answers from it, flagged `degraded: true`; the requested edit
    /// is dropped (re-send it once the cause is gone).
    fn degraded_reply(&mut self, kind: &str, msg: &str) -> Reply {
        self.counters.resolves_failed += 1;
        let sess = self.session.as_mut().expect("resolve checked the session");
        sess.degraded = true;
        let mut r = Reply::ok(true);
        r.push_bool("degraded", true);
        r.push_str("kind", kind);
        r.push_str("error", msg);
        r.push_num("reachable", sess.snapshot.reachable.len() as u64);
        r.push_num("call_edges", sess.snapshot.call_edges.len() as u64);
        r
    }

    fn query(&mut self, req: &BTreeMap<String, Val>) -> Reply {
        let Some(sess) = self.session.as_ref() else {
            return Reply::err("bad-request", "no session loaded");
        };
        let kind = req.get("kind").and_then(Val::as_str).unwrap_or("points-to");
        let mut r = Reply::ok(true);
        r.push_bool("degraded", sess.degraded);
        match kind {
            "points-to" => {
                let Some(q) = req.get("var").and_then(Val::as_str) else {
                    return Reply::err("bad-request", "points-to needs `var`");
                };
                let parts: Vec<&str> = q.split('.').collect();
                let [class, method, var] = parts[..] else {
                    return Reply::err("bad-request", "`var` expects Class.method.var");
                };
                let program = sess.program;
                let Some(m) = program.method_by_qualified_name(&format!("{class}.{method}")) else {
                    return Reply::err("bad-request", &format!("unknown method {class}.{method}"));
                };
                let Some(v) = program
                    .method(m)
                    .vars()
                    .iter()
                    .copied()
                    .find(|&v| program.var(v).name() == var)
                else {
                    return Reply::err(
                        "bad-request",
                        &format!("unknown variable {var} in {class}.{method}"),
                    );
                };
                let mut objs: Vec<String> = sess.snapshot.pts[v.index()]
                    .iter()
                    .map(|&o| {
                        format!(
                            "{} ({})",
                            program.obj(o).label(),
                            program.class(program.obj(o).class()).name()
                        )
                    })
                    .collect();
                objs.sort();
                r.push_str("var", q);
                r.push_str_list("objects", &objs);
            }
            "call-graph" => {
                r.push_num("reachable", sess.snapshot.reachable.len() as u64);
                r.push_num("edges", sess.snapshot.call_edges.len() as u64);
            }
            "casts" => {
                let m = &sess.snapshot.metrics;
                r.push_num("fail_casts", m.fail_casts as u64);
                r.push_num("poly_calls", m.poly_calls as u64);
            }
            other => return Reply::err("bad-request", &format!("unknown query kind `{other}`")),
        }
        r
    }

    fn stats(&self) -> Reply {
        let mut r = Reply::ok(true);
        r.push_num("requests", self.counters.requests);
        r.push_num("resolves_ok", self.counters.resolves_ok);
        r.push_num("resolves_failed", self.counters.resolves_failed);
        r.push_num("request_panics", self.counters.request_panics);
        match self.session.as_ref() {
            Some(sess) => {
                r.push_bool("loaded", true);
                r.push_bool("degraded", sess.degraded);
                r.push_str("analysis", &sess.snapshot.analysis);
                r.push_num("vars", sess.snapshot.pts.len() as u64);
                r.push_num("reachable", sess.snapshot.reachable.len() as u64);
            }
            None => {
                r.push_bool("loaded", false);
            }
        }
        r
    }

    /// Arms (or clears) the deterministic fault-injection schedule — the
    /// protocol-level hook the chaos and serve integration tests drive.
    fn fault(&mut self, req: &BTreeMap<String, Val>) -> Reply {
        let Some(spec) = req.get("spec").and_then(Val::as_str) else {
            return Reply::err("bad-request", "fault needs `spec`");
        };
        match csc_core::fault::arm_spec(spec) {
            Ok(()) => {
                let mut r = Reply::ok(true);
                r.push_str("armed", spec);
                r
            }
            Err(e) => Reply::err("bad-request", &e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_objects() {
        let m = parse_object(r#"{"cmd":"load","bench":"hsqldb","threads":2,"fresh":true}"#)
            .expect("parses");
        assert_eq!(m["cmd"], Val::Str("load".into()));
        assert_eq!(m["bench"], Val::Str("hsqldb".into()));
        assert_eq!(m["threads"].as_u64(), Some(2));
        assert_eq!(m["fresh"], Val::Bool(true));
        assert!(parse_object(r#"{"a":{"b":1}}"#).is_err(), "nested rejected");
        assert!(parse_object(r#"{"a":1} trailing"#).is_err());
        let esc = parse_object(r#"{"s":"a\"b\\c\ndA"}"#).expect("escapes");
        assert_eq!(esc["s"], Val::Str("a\"b\\c\ndA".into()));
    }

    #[test]
    fn renders_escaped_replies() {
        let mut r = Reply::ok(true);
        r.push_str("msg", "a\"b\nc");
        r.push_num("n", 7u64);
        r.push_str_list("xs", &["p".into(), "q\"r".into()]);
        assert_eq!(
            r.render(),
            r#"{"ok":true,"msg":"a\"b\nc","n":7,"xs":["p","q\"r"]}"#
        );
        // Round-trip: the reply parses back under the same parser.
        let parsed = parse_object(r#"{"ok":true,"msg":"a\"b\nc","n":7}"#).expect("parses");
        assert_eq!(parsed["msg"], Val::Str("a\"b\nc".into()));
    }
}
