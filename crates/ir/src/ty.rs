//! The (deliberately small) type system of the IR.
//!
//! Reference types are classes with single inheritance rooted at a
//! distinguished `Object` class. There are three primitive types (`int`,
//! `boolean`, `void`) and the `null` type, which is a subtype of every
//! reference type. Arrays are not part of the language: the mini-JDK
//! containers used by the workloads are implemented with linked nodes, which
//! keeps both the analysis rules and the concrete interpreter exact (see
//! DESIGN.md §2).

use crate::ids::ClassId;

/// A type in the IR.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit integer primitive.
    Int,
    /// Boolean primitive.
    Boolean,
    /// The `void` pseudo-type (method returns only).
    Void,
    /// The type of the `null` literal; subtype of every reference type.
    Null,
    /// A reference type, i.e. an instance of the given class.
    Class(ClassId),
}

impl Type {
    /// Returns `true` for types whose values are heap references
    /// (classes and `null`).
    #[inline]
    pub fn is_reference(self) -> bool {
        matches!(self, Type::Class(_) | Type::Null)
    }

    /// Returns the class id if this is a class type.
    #[inline]
    pub fn as_class(self) -> Option<ClassId> {
        match self {
            Type::Class(c) => Some(c),
            _ => None,
        }
    }
}

impl From<ClassId> for Type {
    #[inline]
    fn from(c: ClassId) -> Self {
        Type::Class(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_classification() {
        assert!(Type::Null.is_reference());
        assert!(Type::Class(ClassId::new(0)).is_reference());
        assert!(!Type::Int.is_reference());
        assert!(!Type::Void.is_reference());
        assert!(!Type::Boolean.is_reference());
    }

    #[test]
    fn as_class() {
        assert_eq!(
            Type::Class(ClassId::new(4)).as_class(),
            Some(ClassId::new(4))
        );
        assert_eq!(Type::Int.as_class(), None);
    }

    #[test]
    fn from_class_id() {
        let t: Type = ClassId::new(2).into();
        assert_eq!(t, Type::Class(ClassId::new(2)));
    }
}
