//! A compact, versioned binary codec for whole [`Program`]s.
//!
//! Lowering a generated workload (lex → parse → lower → hierarchy
//! resolution) dominates process start-up for the bench tables and the
//! differential harness; the on-disk half of the compiled-IR cache
//! (`csc_workloads::compiled`) serializes the *lowered* IR so fresh
//! processes skip it entirely. The format is deliberately dumb:
//! little-endian fixed-width integers, length-prefixed strings, one tag
//! byte per enum variant, tables in id order — no self-description, no
//! external dependency. A magic header plus format version guards against
//! reading a stale layout, and every read is bounds-checked so a
//! truncated or corrupt cache file surfaces as a [`DecodeError`] (which
//! cache readers treat as a miss), never a panic.
//!
//! The encoding is canonical — derived tables (vtables) are written in
//! sorted key order — so equal programs produce byte-identical encodings,
//! which keeps content-addressed cache files stable across runs.

use std::collections::HashMap;
use std::fmt;

use crate::ids::{CallSiteId, CastId, ClassId, FieldId, LoadId, MethodId, ObjId, StoreId, VarId};
use crate::program::{
    CallSite, CastSite, Class, Field, LoadSite, Method, MethodKind, ObjInfo, Program, SigId,
    StoreSite, VarInfo,
};
use crate::stmt::{BinOp, CallKind, Stmt};
use crate::ty::Type;

/// Magic bytes every encoded program starts with.
const MAGIC: &[u8; 6] = b"CSCIR\0";
/// Format version; bump whenever the layout changes.
const VERSION: u32 = 1;

/// Why a byte stream failed to decode as a [`Program`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The magic header or format version did not match.
    BadHeader,
    /// The stream ended before the structure was complete.
    UnexpectedEof,
    /// An enum tag byte had no corresponding variant.
    BadTag(u8),
    /// Trailing bytes after the structure, or an id out of table range.
    Corrupt(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadHeader => write!(f, "bad magic or unsupported format version"),
            DecodeError::UnexpectedEof => write!(f, "unexpected end of input"),
            DecodeError::BadTag(t) => write!(f, "unknown enum tag {t}"),
            DecodeError::Corrupt(what) => write!(f, "corrupt program encoding: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---- writer ---------------------------------------------------------------

struct W {
    buf: Vec<u8>,
}

impl W {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn len(&mut self, v: usize) {
        self.u32(u32::try_from(v).expect("table length fits u32"));
    }
    fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn opt32(&mut self, v: Option<u32>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
        }
    }
    fn ty(&mut self, t: Type) {
        match t {
            Type::Int => self.u8(0),
            Type::Boolean => self.u8(1),
            Type::Void => self.u8(2),
            Type::Null => self.u8(3),
            Type::Class(c) => {
                self.u8(4);
                self.u32(c.raw());
            }
        }
    }
    fn stmts(&mut self, body: &[Stmt]) {
        self.len(body.len());
        for s in body {
            self.stmt(s);
        }
    }
    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::New { lhs, obj } => {
                self.u8(0);
                self.u32(lhs.raw());
                self.u32(obj.raw());
            }
            Stmt::Assign { lhs, rhs } => {
                self.u8(1);
                self.u32(lhs.raw());
                self.u32(rhs.raw());
            }
            Stmt::Cast(id) => {
                self.u8(2);
                self.u32(id.raw());
            }
            Stmt::Load(id) => {
                self.u8(3);
                self.u32(id.raw());
            }
            Stmt::Store(id) => {
                self.u8(4);
                self.u32(id.raw());
            }
            Stmt::Call(id) => {
                self.u8(5);
                self.u32(id.raw());
            }
            Stmt::Return => self.u8(6),
            Stmt::ConstInt { lhs, value } => {
                self.u8(7);
                self.u32(lhs.raw());
                self.i64(*value);
            }
            Stmt::ConstBool { lhs, value } => {
                self.u8(8);
                self.u32(lhs.raw());
                self.u8(u8::from(*value));
            }
            Stmt::ConstNull { lhs } => {
                self.u8(9);
                self.u32(lhs.raw());
            }
            Stmt::BinOp { lhs, op, a, b } => {
                self.u8(10);
                self.u32(lhs.raw());
                self.u8(binop_tag(*op));
                self.u32(a.raw());
                self.u32(b.raw());
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.u8(11);
                self.u32(cond.raw());
                self.stmts(then_branch);
                self.stmts(else_branch);
            }
            Stmt::While {
                cond_stmts,
                cond,
                body,
            } => {
                self.u8(12);
                self.stmts(cond_stmts);
                self.u32(cond.raw());
                self.stmts(body);
            }
        }
    }
}

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Rem => 3,
        BinOp::Lt => 4,
        BinOp::Le => 5,
        BinOp::EqInt => 6,
        BinOp::NeInt => 7,
        BinOp::EqRef => 8,
        BinOp::NeRef => 9,
    }
}

fn binop_from(tag: u8) -> Result<BinOp, DecodeError> {
    Ok(match tag {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Rem,
        4 => BinOp::Lt,
        5 => BinOp::Le,
        6 => BinOp::EqInt,
        7 => BinOp::NeInt,
        8 => BinOp::EqRef,
        9 => BinOp::NeRef,
        t => return Err(DecodeError::BadTag(t)),
    })
}

// ---- reader ---------------------------------------------------------------

struct R<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> R<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::UnexpectedEof)?;
        if end > self.buf.len() {
            return Err(DecodeError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn len(&mut self) -> Result<usize, DecodeError> {
        Ok(self.u32()? as usize)
    }
    /// A length prefix for a table whose elements occupy at least
    /// `min_elem` bytes each — bounds it against the remaining input so a
    /// corrupt length cannot trigger a huge allocation.
    fn table_len(&mut self, min_elem: usize) -> Result<usize, DecodeError> {
        let n = self.len()?;
        if n.saturating_mul(min_elem.max(1)) > self.buf.len() - self.pos {
            return Err(DecodeError::UnexpectedEof);
        }
        Ok(n)
    }
    fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Corrupt("non-UTF-8 string"))
    }
    fn opt32(&mut self) -> Result<Option<u32>, DecodeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            t => Err(DecodeError::BadTag(t)),
        }
    }
    fn ty(&mut self) -> Result<Type, DecodeError> {
        Ok(match self.u8()? {
            0 => Type::Int,
            1 => Type::Boolean,
            2 => Type::Void,
            3 => Type::Null,
            4 => Type::Class(ClassId::new(self.u32()?)),
            t => return Err(DecodeError::BadTag(t)),
        })
    }
    fn stmts(&mut self) -> Result<Vec<Stmt>, DecodeError> {
        let n = self.table_len(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.stmt()?);
        }
        Ok(out)
    }
    fn stmt(&mut self) -> Result<Stmt, DecodeError> {
        Ok(match self.u8()? {
            0 => Stmt::New {
                lhs: VarId::new(self.u32()?),
                obj: ObjId::new(self.u32()?),
            },
            1 => Stmt::Assign {
                lhs: VarId::new(self.u32()?),
                rhs: VarId::new(self.u32()?),
            },
            2 => Stmt::Cast(CastId::new(self.u32()?)),
            3 => Stmt::Load(LoadId::new(self.u32()?)),
            4 => Stmt::Store(StoreId::new(self.u32()?)),
            5 => Stmt::Call(CallSiteId::new(self.u32()?)),
            6 => Stmt::Return,
            7 => Stmt::ConstInt {
                lhs: VarId::new(self.u32()?),
                value: self.i64()?,
            },
            8 => Stmt::ConstBool {
                lhs: VarId::new(self.u32()?),
                value: self.u8()? != 0,
            },
            9 => Stmt::ConstNull {
                lhs: VarId::new(self.u32()?),
            },
            10 => Stmt::BinOp {
                lhs: VarId::new(self.u32()?),
                op: binop_from(self.u8()?)?,
                a: VarId::new(self.u32()?),
                b: VarId::new(self.u32()?),
            },
            11 => Stmt::If {
                cond: VarId::new(self.u32()?),
                then_branch: self.stmts()?,
                else_branch: self.stmts()?,
            },
            12 => Stmt::While {
                cond_stmts: self.stmts()?,
                cond: VarId::new(self.u32()?),
                body: self.stmts()?,
            },
            t => return Err(DecodeError::BadTag(t)),
        })
    }
    fn id_vec<T>(&mut self, mk: impl Fn(u32) -> T) -> Result<Vec<T>, DecodeError> {
        let n = self.table_len(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(mk(self.u32()?));
        }
        Ok(out)
    }
}

// ---- program --------------------------------------------------------------

impl Program {
    /// Encodes the whole program into the versioned binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = W {
            buf: Vec::with_capacity(1 << 16),
        };
        w.buf.extend_from_slice(MAGIC);
        w.u32(VERSION);

        w.len(self.classes.len());
        for c in &self.classes {
            w.str(&c.name);
            w.opt32(c.superclass.map(|s| s.raw()));
            w.len(c.fields.len());
            for f in &c.fields {
                w.u32(f.raw());
            }
            w.len(c.methods.len());
            for m in &c.methods {
                w.u32(m.raw());
            }
            w.u8(u8::from(c.is_abstract));
        }

        w.len(self.fields.len());
        for f in &self.fields {
            w.str(&f.name);
            w.u32(f.class.raw());
            w.ty(f.ty);
        }

        w.len(self.methods.len());
        for m in &self.methods {
            w.str(&m.name);
            w.u32(m.class.raw());
            w.u8(match m.kind {
                MethodKind::Instance => 0,
                MethodKind::Constructor => 1,
                MethodKind::Static => 2,
            });
            w.u32(m.sig.0);
            w.len(m.param_types.len());
            for &t in &m.param_types {
                w.ty(t);
            }
            w.ty(m.ret_ty);
            w.opt32(m.this_var.map(|v| v.raw()));
            w.len(m.params.len());
            for p in &m.params {
                w.u32(p.raw());
            }
            w.opt32(m.ret_var.map(|v| v.raw()));
            w.len(m.vars.len());
            for v in &m.vars {
                w.u32(v.raw());
            }
            w.stmts(&m.body);
            w.u8(u8::from(m.is_abstract));
        }

        w.len(self.vars.len());
        for v in &self.vars {
            w.str(&v.name);
            w.u32(v.method.raw());
            w.ty(v.ty);
        }

        w.len(self.objs.len());
        for o in &self.objs {
            w.u32(o.class.raw());
            w.u32(o.method.raw());
            w.str(&o.label);
        }

        w.len(self.call_sites.len());
        for c in &self.call_sites {
            w.u32(c.method.raw());
            w.u8(match c.kind {
                CallKind::Virtual => 0,
                CallKind::Special => 1,
                CallKind::Static => 2,
            });
            w.opt32(c.lhs.map(|v| v.raw()));
            w.opt32(c.recv.map(|v| v.raw()));
            w.len(c.args.len());
            for a in &c.args {
                w.u32(a.raw());
            }
            w.u32(c.target.raw());
        }

        w.len(self.loads.len());
        for l in &self.loads {
            w.u32(l.method.raw());
            w.u32(l.lhs.raw());
            w.u32(l.base.raw());
            w.u32(l.field.raw());
        }

        w.len(self.stores.len());
        for s in &self.stores {
            w.u32(s.method.raw());
            w.u32(s.base.raw());
            w.u32(s.field.raw());
            w.u32(s.rhs.raw());
        }

        w.len(self.casts.len());
        for c in &self.casts {
            w.u32(c.method.raw());
            w.u32(c.lhs.raw());
            w.u32(c.rhs.raw());
            w.ty(c.ty);
        }

        w.len(self.sigs.len());
        for (name, tys) in &self.sigs {
            w.str(name);
            w.len(tys.len());
            for &t in tys {
                w.ty(t);
            }
        }

        w.u32(self.entry.raw());
        w.u32(self.object_class.raw());

        // Canonical order: sorted by signature id, so equal programs have
        // byte-identical encodings.
        w.len(self.vtables.len());
        for table in &self.vtables {
            let mut entries: Vec<(SigId, MethodId)> = table.iter().map(|(&s, &m)| (s, m)).collect();
            entries.sort_unstable();
            w.len(entries.len());
            for (s, m) in entries {
                w.u32(s.0);
                w.u32(m.raw());
            }
        }

        w.len(self.ancestors.len());
        for chain in &self.ancestors {
            w.len(chain.len());
            for c in chain {
                w.u32(c.raw());
            }
        }

        w.buf
    }

    /// Decodes a program previously produced by [`Program::to_bytes`].
    ///
    /// Every read is bounds-checked; truncated, corrupt, or
    /// version-mismatched input yields a [`DecodeError`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Program, DecodeError> {
        let mut r = R { buf: bytes, pos: 0 };
        if r.take(MAGIC.len())? != MAGIC || r.u32()? != VERSION {
            return Err(DecodeError::BadHeader);
        }

        let n = r.table_len(8)?;
        let mut classes = Vec::with_capacity(n);
        for _ in 0..n {
            classes.push(Class {
                name: r.str()?,
                superclass: r.opt32()?.map(ClassId::new),
                fields: r.id_vec(FieldId::new)?,
                methods: r.id_vec(MethodId::new)?,
                is_abstract: r.u8()? != 0,
            });
        }

        let n = r.table_len(9)?;
        let mut fields = Vec::with_capacity(n);
        for _ in 0..n {
            fields.push(Field {
                name: r.str()?,
                class: ClassId::new(r.u32()?),
                ty: r.ty()?,
            });
        }

        let n = r.table_len(16)?;
        let mut methods = Vec::with_capacity(n);
        for _ in 0..n {
            methods.push(Method {
                name: r.str()?,
                class: ClassId::new(r.u32()?),
                kind: match r.u8()? {
                    0 => MethodKind::Instance,
                    1 => MethodKind::Constructor,
                    2 => MethodKind::Static,
                    t => return Err(DecodeError::BadTag(t)),
                },
                sig: SigId(r.u32()?),
                param_types: {
                    let k = r.table_len(1)?;
                    let mut tys = Vec::with_capacity(k);
                    for _ in 0..k {
                        tys.push(r.ty()?);
                    }
                    tys
                },
                ret_ty: r.ty()?,
                this_var: r.opt32()?.map(VarId::new),
                params: r.id_vec(VarId::new)?,
                ret_var: r.opt32()?.map(VarId::new),
                vars: r.id_vec(VarId::new)?,
                body: r.stmts()?,
                is_abstract: r.u8()? != 0,
            });
        }

        let n = r.table_len(9)?;
        let mut vars = Vec::with_capacity(n);
        for _ in 0..n {
            vars.push(VarInfo {
                name: r.str()?,
                method: MethodId::new(r.u32()?),
                ty: r.ty()?,
            });
        }

        let n = r.table_len(12)?;
        let mut objs = Vec::with_capacity(n);
        for _ in 0..n {
            objs.push(ObjInfo {
                class: ClassId::new(r.u32()?),
                method: MethodId::new(r.u32()?),
                label: r.str()?,
            });
        }

        let n = r.table_len(15)?;
        let mut call_sites = Vec::with_capacity(n);
        for _ in 0..n {
            call_sites.push(CallSite {
                method: MethodId::new(r.u32()?),
                kind: match r.u8()? {
                    0 => CallKind::Virtual,
                    1 => CallKind::Special,
                    2 => CallKind::Static,
                    t => return Err(DecodeError::BadTag(t)),
                },
                lhs: r.opt32()?.map(VarId::new),
                recv: r.opt32()?.map(VarId::new),
                args: r.id_vec(VarId::new)?,
                target: MethodId::new(r.u32()?),
            });
        }

        let n = r.table_len(16)?;
        let mut loads = Vec::with_capacity(n);
        for _ in 0..n {
            loads.push(LoadSite {
                method: MethodId::new(r.u32()?),
                lhs: VarId::new(r.u32()?),
                base: VarId::new(r.u32()?),
                field: FieldId::new(r.u32()?),
            });
        }

        let n = r.table_len(16)?;
        let mut stores = Vec::with_capacity(n);
        for _ in 0..n {
            stores.push(StoreSite {
                method: MethodId::new(r.u32()?),
                base: VarId::new(r.u32()?),
                field: FieldId::new(r.u32()?),
                rhs: VarId::new(r.u32()?),
            });
        }

        let n = r.table_len(13)?;
        let mut casts = Vec::with_capacity(n);
        for _ in 0..n {
            casts.push(CastSite {
                method: MethodId::new(r.u32()?),
                lhs: VarId::new(r.u32()?),
                rhs: VarId::new(r.u32()?),
                ty: r.ty()?,
            });
        }

        let n = r.table_len(8)?;
        let mut sigs = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.str()?;
            let k = r.table_len(1)?;
            let mut tys = Vec::with_capacity(k);
            for _ in 0..k {
                tys.push(r.ty()?);
            }
            sigs.push((name, tys));
        }

        let entry = MethodId::new(r.u32()?);
        let object_class = ClassId::new(r.u32()?);

        let n = r.table_len(4)?;
        let mut vtables = Vec::with_capacity(n);
        for _ in 0..n {
            let k = r.table_len(8)?;
            let mut table = HashMap::with_capacity(k);
            for _ in 0..k {
                table.insert(SigId(r.u32()?), MethodId::new(r.u32()?));
            }
            vtables.push(table);
        }

        let n = r.table_len(4)?;
        let mut ancestors = Vec::with_capacity(n);
        for _ in 0..n {
            ancestors.push(r.id_vec(ClassId::new)?);
        }

        if r.pos != r.buf.len() {
            return Err(DecodeError::Corrupt("trailing bytes"));
        }
        if entry.index() >= methods.len() {
            return Err(DecodeError::Corrupt("entry method out of range"));
        }
        if object_class.index() >= classes.len() {
            return Err(DecodeError::Corrupt("object class out of range"));
        }
        if vtables.len() != classes.len() || ancestors.len() != classes.len() {
            return Err(DecodeError::Corrupt("derived tables out of sync"));
        }

        let program = Program {
            classes,
            fields,
            methods,
            vars,
            objs,
            call_sites,
            loads,
            stores,
            casts,
            sigs,
            entry,
            object_class,
            vtables,
            ancestors,
        };
        validate_ids(&program)?;
        Ok(program)
    }
}

/// Checks every id embedded in a decoded program against its table's
/// bounds, so a structurally well-formed but corrupt stream surfaces as a
/// [`DecodeError`] here rather than as an index-out-of-bounds panic in
/// whatever analysis touches the bad record first. Cheap relative to
/// decoding (one pass, no allocation) and only on the decode path —
/// programs built through [`crate::ProgramBuilder`] are validated there.
fn validate_ids(p: &Program) -> Result<(), DecodeError> {
    let err = |what| Err(DecodeError::Corrupt(what));
    let class_ok = |c: ClassId| c.index() < p.classes.len();
    let field_ok = |f: FieldId| f.index() < p.fields.len();
    let method_ok = |m: MethodId| m.index() < p.methods.len();
    let var_ok = |v: VarId| v.index() < p.vars.len();
    let ty_ok = |t: Type| match t {
        Type::Class(c) => class_ok(c),
        _ => true,
    };
    for c in &p.classes {
        if c.superclass.is_some_and(|s| !class_ok(s))
            || c.fields.iter().any(|&f| !field_ok(f))
            || c.methods.iter().any(|&m| !method_ok(m))
        {
            return err("class record id out of range");
        }
    }
    for f in &p.fields {
        if !class_ok(f.class) || !ty_ok(f.ty) {
            return err("field record id out of range");
        }
    }
    for m in &p.methods {
        if !class_ok(m.class)
            || (m.sig.0 as usize) >= p.sigs.len()
            || !m.param_types.iter().all(|&t| ty_ok(t))
            || !ty_ok(m.ret_ty)
            || m.this_var.is_some_and(|v| !var_ok(v))
            || m.ret_var.is_some_and(|v| !var_ok(v))
            || m.params.iter().any(|&v| !var_ok(v))
            || m.vars.iter().any(|&v| !var_ok(v))
        {
            return err("method record id out of range");
        }
        let mut ok = true;
        crate::stmt::visit_all(&m.body, &mut |s| {
            ok &= match *s {
                Stmt::New { lhs, obj } => var_ok(lhs) && obj.index() < p.objs.len(),
                Stmt::Assign { lhs, rhs } => var_ok(lhs) && var_ok(rhs),
                Stmt::Cast(id) => id.index() < p.casts.len(),
                Stmt::Load(id) => id.index() < p.loads.len(),
                Stmt::Store(id) => id.index() < p.stores.len(),
                Stmt::Call(id) => id.index() < p.call_sites.len(),
                Stmt::Return => true,
                Stmt::ConstInt { lhs, .. }
                | Stmt::ConstBool { lhs, .. }
                | Stmt::ConstNull { lhs } => var_ok(lhs),
                Stmt::BinOp { lhs, a, b, .. } => var_ok(lhs) && var_ok(a) && var_ok(b),
                Stmt::If { cond, .. } => var_ok(cond),
                Stmt::While { cond, .. } => var_ok(cond),
            };
        });
        if !ok {
            return err("statement id out of range");
        }
    }
    for v in &p.vars {
        if !method_ok(v.method) || !ty_ok(v.ty) {
            return err("var record id out of range");
        }
    }
    for o in &p.objs {
        if !class_ok(o.class) || !method_ok(o.method) {
            return err("obj record id out of range");
        }
    }
    for c in &p.call_sites {
        if !method_ok(c.method)
            || !method_ok(c.target)
            || c.lhs.is_some_and(|v| !var_ok(v))
            || c.recv.is_some_and(|v| !var_ok(v))
            || c.args.iter().any(|&v| !var_ok(v))
        {
            return err("call-site record id out of range");
        }
    }
    for l in &p.loads {
        if !method_ok(l.method) || !var_ok(l.lhs) || !var_ok(l.base) || !field_ok(l.field) {
            return err("load record id out of range");
        }
    }
    for s in &p.stores {
        if !method_ok(s.method) || !var_ok(s.base) || !field_ok(s.field) || !var_ok(s.rhs) {
            return err("store record id out of range");
        }
    }
    for c in &p.casts {
        if !method_ok(c.method) || !var_ok(c.lhs) || !var_ok(c.rhs) || !ty_ok(c.ty) {
            return err("cast record id out of range");
        }
    }
    for (_, tys) in &p.sigs {
        if !tys.iter().all(|&t| ty_ok(t)) {
            return err("signature type id out of range");
        }
    }
    for table in &p.vtables {
        for (&s, &m) in table {
            if (s.0 as usize) >= p.sigs.len() || !method_ok(m) {
                return err("vtable entry id out of range");
            }
        }
    }
    for chain in &p.ancestors {
        if chain.iter().any(|&c| !class_ok(c)) {
            return err("ancestor chain id out of range");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CallKind as CK, MethodKind as MK, ProgramBuilder};

    fn sample() -> Program {
        let mut pb = ProgramBuilder::new();
        let object = pb.object_class();
        let bx = pb.add_class("Box", None);
        let f = pb.add_field(bx, "f", Type::Class(object));
        let mut set = pb.begin_method(
            bx,
            "set",
            MK::Instance,
            &[("v", Type::Class(object))],
            Type::Void,
        );
        let this = set.this().unwrap();
        let v = set.param(0);
        set.store(this, f, v);
        let set = set.finish();
        let main_class = pb.add_class("Main", None);
        let mut mb = pb.begin_method(main_class, "main", MK::Static, &[], Type::Void);
        let b = mb.local("b", Type::Class(bx));
        let o = mb.local("o", Type::Class(object));
        mb.new_obj(b, bx, "box@1");
        mb.new_obj(o, object, "obj@2");
        mb.call(CK::Virtual, None, Some(b), set, &[o]);
        let main = mb.finish();
        pb.set_entry(main);
        pb.finish().unwrap()
    }

    #[test]
    fn roundtrip_is_identity() {
        let p = sample();
        let bytes = p.to_bytes();
        let q = Program::from_bytes(&bytes).expect("decodes");
        assert_eq!(p, q);
    }

    #[test]
    fn encoding_is_canonical() {
        let p = sample();
        assert_eq!(p.to_bytes(), p.to_bytes());
        let q = Program::from_bytes(&p.to_bytes()).unwrap();
        assert_eq!(p.to_bytes(), q.to_bytes());
    }

    /// A structurally valid stream whose embedded ids point outside their
    /// tables must decode to an error, not hand back a program that
    /// panics the first analysis that indexes with the bad id.
    #[test]
    fn out_of_range_ids_are_rejected() {
        let mut bad = sample();
        bad.stores[0].rhs = VarId::new(9999);
        assert!(matches!(
            Program::from_bytes(&bad.to_bytes()),
            Err(DecodeError::Corrupt("store record id out of range"))
        ));
        let mut bad = sample();
        bad.vars[0].method = MethodId::new(9999);
        assert!(matches!(
            Program::from_bytes(&bad.to_bytes()),
            Err(DecodeError::Corrupt("var record id out of range"))
        ));
    }

    #[test]
    fn corrupt_input_is_an_error_not_a_panic() {
        let p = sample();
        let bytes = p.to_bytes();
        assert_eq!(
            Program::from_bytes(b"nope"),
            Err(DecodeError::UnexpectedEof)
        );
        assert_eq!(
            Program::from_bytes(&bytes[..bytes.len() - 3]),
            Err(DecodeError::UnexpectedEof)
        );
        let mut wrong_version = bytes.clone();
        wrong_version[6] = 0xEE;
        assert_eq!(
            Program::from_bytes(&wrong_version),
            Err(DecodeError::BadHeader)
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            Program::from_bytes(&trailing),
            Err(DecodeError::Corrupt("trailing bytes"))
        );
    }
}
