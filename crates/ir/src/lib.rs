//! # csc-ir — typed Java-like IR for the cut-shortcut pointer analysis
//!
//! This crate defines the intermediate representation consumed by the
//! `csc-core` pointer analyses, the `csc-interp` concrete interpreter, and
//! produced by the `csc-frontend` MiniJava compiler.
//!
//! The IR mirrors the domain of the Cut-Shortcut paper's formalism
//! (PLDI 2023, Fig. 6): programs are sets of methods whose bodies contain
//! allocation (`New`), copy (`Assign`), cast (`Cast`), instance-field access
//! (`Load`/`Store`), invocation (`Call`), and return statements, plus just
//! enough integer/boolean arithmetic and structured control flow to make the
//! workloads concretely executable for the recall experiment.
//!
//! ## Example
//!
//! ```
//! use csc_ir::{ProgramBuilder, MethodKind, Type, CallKind};
//!
//! // class Box { Object f; void set(Object v) { this.f = v; } }
//! let mut pb = ProgramBuilder::new();
//! let object = pb.object_class();
//! let bx = pb.add_class("Box", None);
//! let f = pb.add_field(bx, "f", Type::Class(object));
//! let mut set = pb.begin_method(
//!     bx, "set", MethodKind::Instance,
//!     &[("v", Type::Class(object))], Type::Void);
//! let this = set.this().unwrap();
//! let v = set.param(0);
//! set.store(this, f, v);
//! let set = set.finish();
//!
//! let main_class = pb.add_class("Main", None);
//! let mut mb = pb.begin_method(main_class, "main", MethodKind::Static, &[], Type::Void);
//! let b = mb.local("b", Type::Class(bx));
//! let o = mb.local("o", Type::Class(object));
//! mb.new_obj(b, bx, "box@1");
//! mb.new_obj(o, object, "obj@2");
//! mb.call(CallKind::Virtual, None, Some(b), set, &[o]);
//! let main = mb.finish();
//! pb.set_entry(main);
//!
//! let program = pb.finish()?;
//! assert_eq!(program.call_sites().len(), 1);
//! # Ok::<(), csc_ir::BuildError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod bytes;
mod delta;
mod display;
mod ids;
mod program;
mod stmt;
mod ty;

pub use builder::{BuildError, MethodBuilder, ProgramBuilder};
pub use bytes::DecodeError;
pub use delta::{DeltaEffects, DeltaError, DeltaOp, DeltaStmt, EntityCounts, ProgramDelta};
pub use ids::{CallSiteId, CastId, ClassId, FieldId, LoadId, MethodId, ObjId, StoreId, VarId};
pub use program::{
    CallSite, CastSite, Class, Field, LoadSite, Method, MethodKind, ObjInfo, Program, SigId,
    StoreSite, VarInfo,
};
pub use stmt::{visit_all, BinOp, CallKind, Stmt};
pub use ty::Type;
