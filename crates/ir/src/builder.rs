//! Programmatic construction of [`Program`]s.
//!
//! [`ProgramBuilder`] owns all entity tables while the program is under
//! construction; [`MethodBuilder`] provides a structured-emission API for
//! method bodies (with `if`/`while` nesting handled by a block stack).
//!
//! Classes may be declared before their superclasses are known
//! ([`ProgramBuilder::set_superclass`]), which lets frontends resolve
//! forward references with a simple two-pass scheme.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::ids::{CallSiteId, CastId, ClassId, FieldId, LoadId, MethodId, ObjId, StoreId, VarId};
use crate::program::{
    CallSite, CastSite, Class, Field, LoadSite, Method, MethodKind, ObjInfo, Program, SigId,
    StoreSite, VarInfo,
};
use crate::stmt::{BinOp, CallKind, Stmt};
use crate::ty::Type;

/// Error produced by [`ProgramBuilder::finish`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// No entry point was set.
    MissingEntry,
    /// The entry point must be a static method without parameters.
    InvalidEntry(String),
    /// The class hierarchy contains a cycle involving the named class.
    HierarchyCycle(String),
    /// Two methods with the same name in one class (overloading is not
    /// supported).
    DuplicateMethod(String, String),
    /// Two fields with the same name in one class.
    DuplicateField(String, String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::MissingEntry => write!(f, "no entry point was set"),
            BuildError::InvalidEntry(m) => {
                write!(f, "entry point `{m}` must be static with no parameters")
            }
            BuildError::HierarchyCycle(c) => {
                write!(f, "class hierarchy cycle involving `{c}`")
            }
            BuildError::DuplicateMethod(c, m) => {
                write!(f, "duplicate method `{m}` in class `{c}`")
            }
            BuildError::DuplicateField(c, fd) => {
                write!(f, "duplicate field `{fd}` in class `{c}`")
            }
        }
    }
}

impl Error for BuildError {}

/// Incrementally builds a [`Program`].
///
/// # Examples
///
/// ```
/// use csc_ir::{ProgramBuilder, MethodKind, Type};
///
/// let mut pb = ProgramBuilder::new();
/// let object = pb.object_class();
/// let main_class = pb.add_class("Main", None);
/// let mut mb = pb.begin_method(main_class, "main", MethodKind::Static, &[], Type::Void);
/// let v = mb.local("x", Type::Class(object));
/// mb.new_obj(v, object, "o1");
/// let main = mb.finish();
/// pb.set_entry(main);
/// let program = pb.finish()?;
/// assert_eq!(program.objs().len(), 1);
/// # Ok::<(), csc_ir::BuildError>(())
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    classes: Vec<Class>,
    fields: Vec<Field>,
    methods: Vec<Method>,
    vars: Vec<VarInfo>,
    objs: Vec<ObjInfo>,
    call_sites: Vec<CallSite>,
    loads: Vec<LoadSite>,
    stores: Vec<StoreSite>,
    casts: Vec<CastSite>,
    sigs: Vec<(String, Vec<Type>)>,
    sig_map: HashMap<(String, Vec<Type>), SigId>,
    object_class: ClassId,
    entry: Option<MethodId>,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// Creates a builder with the root `Object` class already declared.
    pub fn new() -> Self {
        let mut pb = ProgramBuilder {
            classes: Vec::new(),
            fields: Vec::new(),
            methods: Vec::new(),
            vars: Vec::new(),
            objs: Vec::new(),
            call_sites: Vec::new(),
            loads: Vec::new(),
            stores: Vec::new(),
            casts: Vec::new(),
            sigs: Vec::new(),
            sig_map: HashMap::new(),
            object_class: ClassId::new(0),
            entry: None,
        };
        let object = pb.push_class("Object", None, false);
        pb.object_class = object;
        pb
    }

    /// The root of the class hierarchy.
    pub fn object_class(&self) -> ClassId {
        self.object_class
    }

    fn push_class(
        &mut self,
        name: &str,
        superclass: Option<ClassId>,
        is_abstract: bool,
    ) -> ClassId {
        let id = ClassId::from_usize(self.classes.len());
        self.classes.push(Class {
            name: name.to_owned(),
            superclass,
            fields: Vec::new(),
            methods: Vec::new(),
            is_abstract,
        });
        id
    }

    /// Declares a class. A `None` superclass means `Object`.
    pub fn add_class(&mut self, name: &str, superclass: Option<ClassId>) -> ClassId {
        let sup = superclass.unwrap_or(self.object_class);
        self.push_class(name, Some(sup), false)
    }

    /// Declares an abstract class. A `None` superclass means `Object`.
    pub fn add_abstract_class(&mut self, name: &str, superclass: Option<ClassId>) -> ClassId {
        let sup = superclass.unwrap_or(self.object_class);
        self.push_class(name, Some(sup), true)
    }

    /// Re-points the superclass of a previously declared class (frontends
    /// use this to resolve forward references).
    pub fn set_superclass(&mut self, class: ClassId, superclass: ClassId) {
        self.classes[class.index()].superclass = Some(superclass);
    }

    /// Declares an instance field.
    pub fn add_field(&mut self, class: ClassId, name: &str, ty: Type) -> FieldId {
        let id = FieldId::from_usize(self.fields.len());
        self.fields.push(Field {
            name: name.to_owned(),
            class,
            ty,
        });
        self.classes[class.index()].fields.push(id);
        id
    }

    fn intern_sig(&mut self, name: &str, params: &[Type]) -> SigId {
        let key = (name.to_owned(), params.to_vec());
        if let Some(&s) = self.sig_map.get(&key) {
            return s;
        }
        let id = SigId(u32::try_from(self.sigs.len()).expect("too many signatures"));
        self.sigs.push(key.clone());
        self.sig_map.insert(key, id);
        id
    }

    fn new_var(&mut self, name: &str, method: MethodId, ty: Type) -> VarId {
        let id = VarId::from_usize(self.vars.len());
        self.vars.push(VarInfo {
            name: name.to_owned(),
            method,
            ty,
        });
        id
    }

    /// Starts a method and returns a [`MethodBuilder`] for its body.
    /// `this`, parameter, and return variables are created eagerly.
    pub fn begin_method(
        &mut self,
        class: ClassId,
        name: &str,
        kind: MethodKind,
        params: &[(&str, Type)],
        ret_ty: Type,
    ) -> MethodBuilder<'_> {
        let id = self.push_method(class, name, kind, params, ret_ty, false);
        MethodBuilder {
            pb: self,
            method: id,
            blocks: vec![Vec::new()],
        }
    }

    /// Declares an abstract instance method (no body).
    pub fn add_abstract_method(
        &mut self,
        class: ClassId,
        name: &str,
        params: &[(&str, Type)],
        ret_ty: Type,
    ) -> MethodId {
        self.push_method(class, name, MethodKind::Instance, params, ret_ty, true)
    }

    fn push_method(
        &mut self,
        class: ClassId,
        name: &str,
        kind: MethodKind,
        params: &[(&str, Type)],
        ret_ty: Type,
        is_abstract: bool,
    ) -> MethodId {
        let id = MethodId::from_usize(self.methods.len());
        let param_types: Vec<Type> = params.iter().map(|&(_, t)| t).collect();
        let sig = self.intern_sig(name, &param_types);
        let this_var = if kind == MethodKind::Static {
            None
        } else {
            Some(self.new_var("this", id, Type::Class(class)))
        };
        let param_vars: Vec<VarId> = params
            .iter()
            .map(|&(n, t)| self.new_var(n, id, t))
            .collect();
        let ret_var = if ret_ty == Type::Void {
            None
        } else {
            Some(self.new_var("@ret", id, ret_ty))
        };
        let mut vars: Vec<VarId> = Vec::new();
        vars.extend(this_var);
        vars.extend(param_vars.iter().copied());
        vars.extend(ret_var);
        self.methods.push(Method {
            name: name.to_owned(),
            class,
            kind,
            sig,
            param_types,
            ret_ty,
            this_var,
            params: param_vars,
            ret_var,
            vars,
            body: Vec::new(),
            is_abstract,
        });
        self.classes[class.index()].methods.push(id);
        id
    }

    /// Sets the program entry point.
    pub fn set_entry(&mut self, method: MethodId) {
        self.entry = Some(method);
    }

    /// Read access to a method under construction (frontends use this for
    /// parameter variables during lowering).
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.index()]
    }

    /// Read access to a class under construction.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// Read access to a field under construction.
    pub fn field(&self, id: FieldId) -> &Field {
        &self.fields[id.index()]
    }

    /// Read access to a variable.
    pub fn var(&self, id: VarId) -> &VarInfo {
        &self.vars[id.index()]
    }

    /// Number of classes declared so far.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Resumes body construction for an already-declared method. Frontends
    /// that declare all signatures first and lower bodies second use this.
    ///
    /// # Panics
    ///
    /// Panics if the method is abstract.
    pub fn resume_method(&mut self, id: MethodId) -> MethodBuilder<'_> {
        assert!(
            !self.methods[id.index()].is_abstract,
            "cannot build a body for an abstract method"
        );
        MethodBuilder {
            pb: self,
            method: id,
            blocks: vec![Vec::new()],
        }
    }

    /// Validates the program, computes dispatch tables and ancestor chains,
    /// and yields the immutable [`Program`].
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if the entry point is missing or invalid, if
    /// the hierarchy has a cycle, or if a class declares duplicate member
    /// names.
    pub fn finish(self) -> Result<Program, BuildError> {
        let entry = self.entry.ok_or(BuildError::MissingEntry)?;
        {
            let m = &self.methods[entry.index()];
            if m.kind != MethodKind::Static || !m.params.is_empty() {
                return Err(BuildError::InvalidEntry(m.name.clone()));
            }
        }

        // Ancestor chains + cycle detection.
        let n = self.classes.len();
        let mut ancestors: Vec<Vec<ClassId>> = Vec::with_capacity(n);
        for c in 0..n {
            let mut chain = Vec::new();
            let mut cur = Some(ClassId::from_usize(c));
            while let Some(id) = cur {
                if chain.len() > n {
                    return Err(BuildError::HierarchyCycle(self.classes[c].name.clone()));
                }
                chain.push(id);
                cur = self.classes[id.index()].superclass;
            }
            ancestors.push(chain);
        }

        // Duplicate-member checks.
        for class in &self.classes {
            let mut seen = HashMap::new();
            for &m in &class.methods {
                let name = &self.methods[m.index()].name;
                if seen.insert(name.clone(), ()).is_some() {
                    return Err(BuildError::DuplicateMethod(
                        class.name.clone(),
                        name.clone(),
                    ));
                }
            }
            let mut seen = HashMap::new();
            for &f in &class.fields {
                let name = &self.fields[f.index()].name;
                if seen.insert(name.clone(), ()).is_some() {
                    return Err(BuildError::DuplicateField(class.name.clone(), name.clone()));
                }
            }
        }

        // Dispatch tables, parents first (ancestor chains give a valid
        // topological handle: process by increasing chain length).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&c| ancestors[c].len());
        let mut vtables: Vec<HashMap<SigId, MethodId>> = vec![HashMap::new(); n];
        for &c in &order {
            let mut table = match self.classes[c].superclass {
                Some(sup) => vtables[sup.index()].clone(),
                None => HashMap::new(),
            };
            for &m in &self.classes[c].methods {
                let method = &self.methods[m.index()];
                if method.kind != MethodKind::Static && !method.is_abstract {
                    table.insert(method.sig, m);
                }
            }
            vtables[c] = table;
        }

        Ok(Program {
            classes: self.classes,
            fields: self.fields,
            methods: self.methods,
            vars: self.vars,
            objs: self.objs,
            call_sites: self.call_sites,
            loads: self.loads,
            stores: self.stores,
            casts: self.casts,
            sigs: self.sigs,
            entry,
            object_class: self.object_class,
            vtables,
            ancestors,
        })
    }
}

/// Removes the unique `rv = x` assignment from a body (helper for the
/// single-return simplification in [`MethodBuilder::finish`]).
fn remove_ret_assign(body: &mut Vec<Stmt>, rv: VarId) {
    body.retain(|s| !matches!(s, Stmt::Assign { lhs, .. } if *lhs == rv));
    for s in body {
        match s {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                remove_ret_assign(then_branch, rv);
                remove_ret_assign(else_branch, rv);
            }
            Stmt::While {
                cond_stmts, body, ..
            } => {
                remove_ret_assign(cond_stmts, rv);
                remove_ret_assign(body, rv);
            }
            _ => {}
        }
    }
}

/// Emits statements into one method's body.
///
/// Obtained from [`ProgramBuilder::begin_method`]. Dropping the builder
/// without calling [`MethodBuilder::finish`] discards the emitted body.
#[derive(Debug)]
pub struct MethodBuilder<'p> {
    pb: &'p mut ProgramBuilder,
    method: MethodId,
    blocks: Vec<Vec<Stmt>>,
}

impl MethodBuilder<'_> {
    /// The id of the method under construction.
    pub fn id(&self) -> MethodId {
        self.method
    }

    /// The `this` variable (absent for static methods).
    pub fn this(&self) -> Option<VarId> {
        self.pb.methods[self.method.index()].this_var
    }

    /// The `i`-th declared parameter (0-based, excluding `this`).
    pub fn param(&self, i: usize) -> VarId {
        self.pb.methods[self.method.index()].params[i]
    }

    /// The synthetic return variable (absent for `void`).
    pub fn ret_var(&self) -> Option<VarId> {
        self.pb.methods[self.method.index()].ret_var
    }

    /// The declared type of any variable created so far.
    pub fn var_ty(&self, v: VarId) -> Type {
        self.pb.vars[v.index()].ty
    }

    /// Declares a fresh local variable.
    pub fn local(&mut self, name: &str, ty: Type) -> VarId {
        let v = self.pb.new_var(name, self.method, ty);
        self.pb.methods[self.method.index()].vars.push(v);
        v
    }

    fn emit(&mut self, s: Stmt) {
        self.blocks
            .last_mut()
            .expect("block stack non-empty")
            .push(s);
    }

    /// Emits `lhs = new C()` and returns the allocation site.
    pub fn new_obj(&mut self, lhs: VarId, class: ClassId, label: &str) -> ObjId {
        let obj = ObjId::from_usize(self.pb.objs.len());
        self.pb.objs.push(ObjInfo {
            class,
            method: self.method,
            label: label.to_owned(),
        });
        self.emit(Stmt::New { lhs, obj });
        obj
    }

    /// Emits `lhs = rhs`.
    pub fn assign(&mut self, lhs: VarId, rhs: VarId) {
        self.emit(Stmt::Assign { lhs, rhs });
    }

    /// Emits `lhs = (ty) rhs` and returns the cast site.
    pub fn cast(&mut self, lhs: VarId, ty: Type, rhs: VarId) -> CastId {
        let id = CastId::from_usize(self.pb.casts.len());
        self.pb.casts.push(CastSite {
            method: self.method,
            lhs,
            rhs,
            ty,
        });
        self.emit(Stmt::Cast(id));
        id
    }

    /// Emits `lhs = base.field` and returns the load site.
    pub fn load(&mut self, lhs: VarId, base: VarId, field: FieldId) -> LoadId {
        let id = LoadId::from_usize(self.pb.loads.len());
        self.pb.loads.push(LoadSite {
            method: self.method,
            lhs,
            base,
            field,
        });
        self.emit(Stmt::Load(id));
        id
    }

    /// Emits `base.field = rhs` and returns the store site.
    pub fn store(&mut self, base: VarId, field: FieldId, rhs: VarId) -> StoreId {
        let id = StoreId::from_usize(self.pb.stores.len());
        self.pb.stores.push(StoreSite {
            method: self.method,
            base,
            field,
            rhs,
        });
        self.emit(Stmt::Store(id));
        id
    }

    /// Emits a call and returns the call site. `recv` must be `Some` exactly
    /// for non-static calls.
    pub fn call(
        &mut self,
        kind: CallKind,
        lhs: Option<VarId>,
        recv: Option<VarId>,
        target: MethodId,
        args: &[VarId],
    ) -> CallSiteId {
        debug_assert_eq!(
            recv.is_some(),
            kind != CallKind::Static,
            "receiver must be present iff the call is not static"
        );
        let id = CallSiteId::from_usize(self.pb.call_sites.len());
        self.pb.call_sites.push(CallSite {
            method: self.method,
            kind,
            lhs,
            recv,
            args: args.to_vec(),
            target,
        });
        self.emit(Stmt::Call(id));
        id
    }

    /// Emits `return v;` (lowered to an assignment to the return variable
    /// followed by a bare `Return`).
    pub fn ret(&mut self, v: Option<VarId>) {
        if let (Some(rv), Some(v)) = (self.ret_var(), v) {
            self.emit(Stmt::Assign { lhs: rv, rhs: v });
        }
        self.emit(Stmt::Return);
    }

    /// Emits `lhs = value` for an integer literal.
    pub fn const_int(&mut self, lhs: VarId, value: i64) {
        self.emit(Stmt::ConstInt { lhs, value });
    }

    /// Emits `lhs = value` for a boolean literal.
    pub fn const_bool(&mut self, lhs: VarId, value: bool) {
        self.emit(Stmt::ConstBool { lhs, value });
    }

    /// Emits `lhs = null`.
    pub fn const_null(&mut self, lhs: VarId) {
        self.emit(Stmt::ConstNull { lhs });
    }

    /// Emits `lhs = a <op> b`.
    pub fn bin_op(&mut self, lhs: VarId, op: BinOp, a: VarId, b: VarId) {
        self.emit(Stmt::BinOp { lhs, op, a, b });
    }

    /// Emits a structured `if`.
    pub fn if_else(
        &mut self,
        cond: VarId,
        then_f: impl FnOnce(&mut Self),
        else_f: impl FnOnce(&mut Self),
    ) {
        self.blocks.push(Vec::new());
        then_f(self);
        let then_branch = self.blocks.pop().expect("then block");
        self.blocks.push(Vec::new());
        else_f(self);
        let else_branch = self.blocks.pop().expect("else block");
        self.emit(Stmt::If {
            cond,
            then_branch,
            else_branch,
        });
    }

    /// Emits a structured `while`. `cond_f` emits the statements that
    /// (re)compute the condition before each check and returns the condition
    /// variable.
    pub fn while_loop(
        &mut self,
        cond_f: impl FnOnce(&mut Self) -> VarId,
        body_f: impl FnOnce(&mut Self),
    ) {
        self.blocks.push(Vec::new());
        let cond = cond_f(self);
        let cond_stmts = self.blocks.pop().expect("cond block");
        self.blocks.push(Vec::new());
        body_f(self);
        let body = self.blocks.pop().expect("body block");
        self.emit(Stmt::While {
            cond_stmts,
            cond,
            body,
        });
    }

    /// Opens a fresh nested block; statements emitted afterwards go into it
    /// until [`MethodBuilder::pop_block`]. Lower-level alternative to
    /// [`MethodBuilder::if_else`] / [`MethodBuilder::while_loop`] for
    /// recursive lowering code that cannot use closures.
    pub fn push_block(&mut self) {
        self.blocks.push(Vec::new());
    }

    /// Closes the innermost nested block and returns its statements.
    ///
    /// # Panics
    ///
    /// Panics when called without a matching [`MethodBuilder::push_block`].
    pub fn pop_block(&mut self) -> Vec<Stmt> {
        assert!(self.blocks.len() > 1, "pop_block without push_block");
        self.blocks.pop().expect("non-empty block stack")
    }

    /// Emits a structured `if` from pre-built branches.
    pub fn emit_if(&mut self, cond: VarId, then_branch: Vec<Stmt>, else_branch: Vec<Stmt>) {
        self.emit(Stmt::If {
            cond,
            then_branch,
            else_branch,
        });
    }

    /// Emits a structured `while` from pre-built condition and body blocks.
    pub fn emit_while(&mut self, cond_stmts: Vec<Stmt>, cond: VarId, body: Vec<Stmt>) {
        self.emit(Stmt::While {
            cond_stmts,
            cond,
            body,
        });
    }

    /// Installs the accumulated body into the method and returns its id.
    ///
    /// Methods with exactly one `return v;` statement are simplified: the
    /// synthetic `@ret` variable is dropped and `v` itself becomes the
    /// method's return variable. This mirrors the IR of the paper's Tai-e
    /// implementation, where `m_ret` *is* the returned variable — the
    /// Cut-Shortcut field-access and local-flow rules match on it directly.
    pub fn finish(mut self) -> MethodId {
        let mut body = self.blocks.pop().expect("root block");
        assert!(self.blocks.is_empty(), "unbalanced block stack");
        if let Some(rv) = self.pb.methods[self.method.index()].ret_var {
            let mut ret_assign_rhs: Vec<VarId> = Vec::new();
            crate::stmt::visit_all(&body, &mut |s| {
                if let Stmt::Assign { lhs, rhs } = s {
                    if *lhs == rv {
                        ret_assign_rhs.push(*rhs);
                    }
                }
            });
            if let [single] = ret_assign_rhs[..] {
                remove_ret_assign(&mut body, rv);
                self.pb.methods[self.method.index()].ret_var = Some(single);
            }
        }
        self.pb.methods[self.method.index()].body = body;
        self.method
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_minimal_program() {
        let mut pb = ProgramBuilder::new();
        let object = pb.object_class();
        let main_class = pb.add_class("Main", None);
        let mut mb = pb.begin_method(main_class, "main", MethodKind::Static, &[], Type::Void);
        let x = mb.local("x", Type::Class(object));
        mb.new_obj(x, object, "o@1");
        let main = mb.finish();
        pb.set_entry(main);
        let p = pb.finish().unwrap();
        assert_eq!(p.entry(), main);
        assert_eq!(p.objs().len(), 1);
        assert_eq!(p.obj(ObjId::new(0)).class(), object);
        assert_eq!(p.stmt_count(), 1);
    }

    #[test]
    fn missing_entry_is_an_error() {
        let pb = ProgramBuilder::new();
        assert_eq!(pb.finish().unwrap_err(), BuildError::MissingEntry);
    }

    #[test]
    fn entry_must_be_static_parameterless() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let m = pb
            .begin_method(c, "run", MethodKind::Instance, &[], Type::Void)
            .finish();
        pb.set_entry(m);
        assert!(matches!(pb.finish(), Err(BuildError::InvalidEntry(_))));
    }

    #[test]
    fn dispatch_resolves_overrides() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A", None);
        let b = pb.add_class("B", Some(a));
        let c = pb.add_class("C", Some(b));
        let m_a = pb
            .begin_method(a, "m", MethodKind::Instance, &[], Type::Void)
            .finish();
        let m_b = pb
            .begin_method(b, "m", MethodKind::Instance, &[], Type::Void)
            .finish();
        let main_class = pb.add_class("Main", None);
        let main = pb
            .begin_method(main_class, "main", MethodKind::Static, &[], Type::Void)
            .finish();
        pb.set_entry(main);
        let p = pb.finish().unwrap();
        assert_eq!(p.dispatch(a, m_a), Some(m_a));
        assert_eq!(p.dispatch(b, m_a), Some(m_b));
        assert_eq!(p.dispatch(c, m_a), Some(m_b), "C inherits B.m");
        assert_eq!(p.dispatch(c, m_b), Some(m_b));
    }

    #[test]
    fn abstract_methods_are_not_dispatch_targets() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_abstract_class("A", None);
        let b = pb.add_class("B", Some(a));
        let m_a = pb.add_abstract_method(a, "m", &[], Type::Void);
        let m_b = pb
            .begin_method(b, "m", MethodKind::Instance, &[], Type::Void)
            .finish();
        let main_class = pb.add_class("Main", None);
        let main = pb
            .begin_method(main_class, "main", MethodKind::Static, &[], Type::Void)
            .finish();
        pb.set_entry(main);
        let p = pb.finish().unwrap();
        assert_eq!(p.dispatch(a, m_a), None, "A has no concrete m");
        assert_eq!(p.dispatch(b, m_a), Some(m_b));
    }

    #[test]
    fn subtyping_and_resolution() {
        let mut pb = ProgramBuilder::new();
        let object = pb.object_class();
        let a = pb.add_class("A", None);
        let b = pb.add_class("B", Some(a));
        let f = pb.add_field(a, "f", Type::Class(object));
        let main_class = pb.add_class("Main", None);
        let main = pb
            .begin_method(main_class, "main", MethodKind::Static, &[], Type::Void)
            .finish();
        pb.set_entry(main);
        let p = pb.finish().unwrap();
        assert!(p.is_subtype(Type::Class(b), Type::Class(a)));
        assert!(p.is_subtype(Type::Class(b), Type::Class(object)));
        assert!(!p.is_subtype(Type::Class(a), Type::Class(b)));
        assert!(p.is_subtype(Type::Null, Type::Class(a)));
        assert!(!p.is_subtype(Type::Int, Type::Class(a)));
        assert!(p.is_subtype(Type::Int, Type::Int));
        assert_eq!(p.resolve_field(b, "f"), Some(f), "fields are inherited");
        assert_eq!(p.resolve_field(b, "g"), None);
        assert_eq!(p.class_by_name("B"), Some(b));
        assert_eq!(p.method_by_qualified_name("Main.main"), Some(main));
    }

    #[test]
    fn duplicate_method_detected() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        pb.begin_method(c, "m", MethodKind::Instance, &[], Type::Void)
            .finish();
        pb.begin_method(
            c,
            "m",
            MethodKind::Instance,
            &[("x", Type::Int)],
            Type::Void,
        )
        .finish();
        let main_class = pb.add_class("Main", None);
        let main = pb
            .begin_method(main_class, "main", MethodKind::Static, &[], Type::Void)
            .finish();
        pb.set_entry(main);
        assert!(matches!(pb.finish(), Err(BuildError::DuplicateMethod(..))));
    }

    #[test]
    fn hierarchy_cycle_detected() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A", None);
        let b = pb.add_class("B", Some(a));
        pb.set_superclass(a, b);
        let main_class = pb.add_class("Main", None);
        let main = pb
            .begin_method(main_class, "main", MethodKind::Static, &[], Type::Void)
            .finish();
        pb.set_entry(main);
        assert!(matches!(pb.finish(), Err(BuildError::HierarchyCycle(_))));
    }

    #[test]
    fn nested_blocks_emit_structured_stmts() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("Main", None);
        let mut mb = pb.begin_method(c, "main", MethodKind::Static, &[], Type::Void);
        let i = mb.local("i", Type::Int);
        let cond = mb.local("c", Type::Boolean);
        let zero = mb.local("z", Type::Int);
        mb.const_int(i, 0);
        mb.const_int(zero, 10);
        mb.while_loop(
            |b| {
                b.bin_op(cond, BinOp::Lt, i, zero);
                cond
            },
            |b| {
                b.if_else(cond, |b| b.const_int(i, 1), |b| b.const_int(i, 2));
            },
        );
        let main = mb.finish();
        pb.set_entry(main);
        let p = pb.finish().unwrap();
        let mut kinds = Vec::new();
        p.method(main).visit_stmts(|s| {
            kinds.push(std::mem::discriminant(s));
        });
        // ConstInt, ConstInt, While, BinOp, If, ConstInt, ConstInt
        assert_eq!(kinds.len(), 7);
    }

    #[test]
    fn single_return_aliases_ret_var() {
        let mut pb = ProgramBuilder::new();
        let object = pb.object_class();
        let c = pb.add_class("C", None);
        let mut mb = pb.begin_method(
            c,
            "id",
            MethodKind::Instance,
            &[("x", Type::Class(object))],
            Type::Class(object),
        );
        let x = mb.param(0);
        mb.ret(Some(x));
        let id = mb.finish();
        let main_class = pb.add_class("Main", None);
        let main = pb
            .begin_method(main_class, "main", MethodKind::Static, &[], Type::Void)
            .finish();
        pb.set_entry(main);
        let p = pb.finish().unwrap();
        let m = p.method(id);
        // Single-return simplification: the returned variable becomes the
        // return variable and the copy disappears.
        assert_eq!(m.ret_var(), Some(x));
        let mut saw_assign = false;
        m.visit_stmts(|s| {
            if matches!(s, Stmt::Assign { .. }) {
                saw_assign = true;
            }
        });
        assert!(!saw_assign, "the @ret copy must be removed");
    }

    #[test]
    fn multiple_returns_keep_ret_var() {
        let mut pb = ProgramBuilder::new();
        let object = pb.object_class();
        let c = pb.add_class("C", None);
        let mut mb = pb.begin_method(
            c,
            "pick",
            MethodKind::Instance,
            &[("a", Type::Class(object)), ("b", Type::Class(object))],
            Type::Class(object),
        );
        let a = mb.param(0);
        let b = mb.param(1);
        let rv = mb.ret_var().unwrap();
        let cond = mb.local("c", Type::Boolean);
        mb.const_bool(cond, true);
        mb.if_else(cond, |m| m.ret(Some(a)), |m| m.ret(Some(b)));
        let pick = mb.finish();
        let main_class = pb.add_class("Main", None);
        let main = pb
            .begin_method(main_class, "main", MethodKind::Static, &[], Type::Void)
            .finish();
        pb.set_entry(main);
        let p = pb.finish().unwrap();
        let m = p.method(pick);
        assert_eq!(m.ret_var(), Some(rv), "two returns: @ret kept");
        let mut assigns = 0;
        m.visit_stmts(|s| {
            if matches!(s, Stmt::Assign { .. }) {
                assigns += 1;
            }
        });
        assert_eq!(assigns, 2);
    }
}
