//! Interned identifier newtypes used throughout the IR and the analyses.
//!
//! Every program entity (class, field, method, variable, allocation site,
//! call site, load/store/cast site) is referred to by a small dense `u32`
//! index into a table owned by [`crate::Program`]. Dense ids keep the
//! analysis data structures flat and cache-friendly (points-to sets,
//! per-variable edge lists, …) and make it trivial to use ids as `Vec`
//! indices.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw index.
            #[inline]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Creates an id from a `usize` index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_usize(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index overflows u32"))
            }

            /// Returns the raw index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw index as `u32`.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// A class declaration.
    ClassId,
    "class#"
);
define_id!(
    /// An instance field declaration.
    FieldId,
    "field#"
);
define_id!(
    /// A method declaration (static, instance, or constructor).
    MethodId,
    "method#"
);
define_id!(
    /// A local variable (including parameters, `this`, and the synthetic
    /// per-method return variable).
    VarId,
    "v"
);
define_id!(
    /// An abstract heap object, i.e. an allocation site (`new T()`).
    ObjId,
    "o"
);
define_id!(
    /// A method invocation site.
    CallSiteId,
    "cs"
);
define_id!(
    /// An instance-field load site (`x = y.f`).
    LoadId,
    "ld"
);
define_id!(
    /// An instance-field store site (`x.f = y`).
    StoreId,
    "st"
);
define_id!(
    /// A reference cast site (`x = (T) y`).
    CastId,
    "cast"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = VarId::new(7);
        assert_eq!(v.index(), 7);
        assert_eq!(v.raw(), 7);
        assert_eq!(VarId::from_usize(7), v);
        assert_eq!(usize::from(v), 7);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(VarId::new(3).to_string(), "v3");
        assert_eq!(ObjId::new(0).to_string(), "o0");
        assert_eq!(format!("{:?}", ClassId::new(1)), "class#1");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(VarId::new(1) < VarId::new(2));
    }
}
