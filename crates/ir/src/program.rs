//! The whole-program IR: entity tables, the class hierarchy, and
//! signature-based virtual dispatch.

use std::collections::HashMap;

use crate::ids::{CallSiteId, CastId, ClassId, FieldId, LoadId, MethodId, ObjId, StoreId, VarId};
use crate::stmt::{CallKind, Stmt};
use crate::ty::Type;

/// Interned method signature: `(name, parameter types)`.
///
/// Two methods with equal signatures in related classes stand in an
/// overriding relationship; virtual dispatch resolves by signature.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SigId(pub(crate) u32);

/// A class declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct Class {
    pub(crate) name: String,
    pub(crate) superclass: Option<ClassId>,
    pub(crate) fields: Vec<FieldId>,
    pub(crate) methods: Vec<MethodId>,
    pub(crate) is_abstract: bool,
}

impl Class {
    /// The class name.
    pub fn name(&self) -> &str {
        &self.name
    }
    /// The direct superclass (`None` only for `Object`).
    pub fn superclass(&self) -> Option<ClassId> {
        self.superclass
    }
    /// Fields declared directly in this class.
    pub fn fields(&self) -> &[FieldId] {
        &self.fields
    }
    /// Methods declared directly in this class.
    pub fn methods(&self) -> &[MethodId] {
        &self.methods
    }
    /// Whether the class is abstract (cannot be instantiated).
    pub fn is_abstract(&self) -> bool {
        self.is_abstract
    }
}

/// An instance field declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct Field {
    pub(crate) name: String,
    pub(crate) class: ClassId,
    pub(crate) ty: Type,
}

impl Field {
    /// The field name.
    pub fn name(&self) -> &str {
        &self.name
    }
    /// The declaring class.
    pub fn class(&self) -> ClassId {
        self.class
    }
    /// The declared type.
    pub fn ty(&self) -> Type {
        self.ty
    }
}

/// Distinguishes the three method flavours of the language.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// Ordinary instance method, virtually dispatched.
    Instance,
    /// Constructor (`<init>`), invoked with [`CallKind::Special`].
    Constructor,
    /// Static method (no `this`).
    Static,
}

/// A method declaration with its body.
#[derive(Clone, Debug, PartialEq)]
pub struct Method {
    pub(crate) name: String,
    pub(crate) class: ClassId,
    pub(crate) kind: MethodKind,
    pub(crate) sig: SigId,
    pub(crate) param_types: Vec<Type>,
    pub(crate) ret_ty: Type,
    pub(crate) this_var: Option<VarId>,
    pub(crate) params: Vec<VarId>,
    pub(crate) ret_var: Option<VarId>,
    pub(crate) vars: Vec<VarId>,
    pub(crate) body: Vec<Stmt>,
    pub(crate) is_abstract: bool,
}

impl Method {
    /// The method name (constructors are named `<init>`).
    pub fn name(&self) -> &str {
        &self.name
    }
    /// The declaring class.
    pub fn class(&self) -> ClassId {
        self.class
    }
    /// Static / instance / constructor.
    pub fn kind(&self) -> MethodKind {
        self.kind
    }
    /// The interned signature.
    pub fn sig(&self) -> SigId {
        self.sig
    }
    /// Declared parameter types, excluding `this`.
    pub fn param_types(&self) -> &[Type] {
        &self.param_types
    }
    /// Declared return type.
    pub fn ret_ty(&self) -> Type {
        self.ret_ty
    }
    /// The `this` variable, if the method is not static.
    pub fn this_var(&self) -> Option<VarId> {
        self.this_var
    }
    /// Parameter variables, excluding `this`.
    pub fn params(&self) -> &[VarId] {
        &self.params
    }
    /// The `k`-th formal parameter in the paper's numbering: `k == 0` is
    /// `this`, `k >= 1` are the declared parameters.
    pub fn param_k(&self, k: usize) -> Option<VarId> {
        if k == 0 {
            self.this_var
        } else {
            self.params.get(k - 1).copied()
        }
    }
    /// Exclusive upper bound for the paper's parameter numbering `k`
    /// (`k == 0` is `this`, `k == 1..=params.len()` are declared
    /// parameters). Iterate `0..param_k_bound()`; [`Method::param_k`]
    /// returns `None` for `k == 0` on static methods.
    pub fn param_k_bound(&self) -> usize {
        self.params.len() + 1
    }
    /// The synthetic return variable `m_ret` (present iff the return type is
    /// a reference type).
    pub fn ret_var(&self) -> Option<VarId> {
        self.ret_var
    }
    /// All local variables of the method (including `this`, parameters and
    /// the return variable).
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }
    /// The method body.
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }
    /// Whether the method has no body (must be overridden).
    pub fn is_abstract(&self) -> bool {
        self.is_abstract
    }
    /// Visits every statement of the body, including statements nested in
    /// `if` / `while` blocks.
    pub fn visit_stmts<'a>(&'a self, mut f: impl FnMut(&'a Stmt)) {
        crate::stmt::visit_all(&self.body, &mut f);
    }
}

/// Metadata for a local variable.
#[derive(Clone, Debug, PartialEq)]
pub struct VarInfo {
    pub(crate) name: String,
    pub(crate) method: MethodId,
    pub(crate) ty: Type,
}

impl VarInfo {
    /// Source-level name.
    pub fn name(&self) -> &str {
        &self.name
    }
    /// The method the variable is local to.
    pub fn method(&self) -> MethodId {
        self.method
    }
    /// Declared type.
    pub fn ty(&self) -> Type {
        self.ty
    }
}

/// Metadata for an allocation site.
#[derive(Clone, Debug, PartialEq)]
pub struct ObjInfo {
    pub(crate) class: ClassId,
    pub(crate) method: MethodId,
    pub(crate) label: String,
}

impl ObjInfo {
    /// The allocated class.
    pub fn class(&self) -> ClassId {
        self.class
    }
    /// The method containing the allocation site.
    pub fn method(&self) -> MethodId {
        self.method
    }
    /// A human-readable label (used by the pretty printer and tests).
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// A method invocation site.
#[derive(Clone, Debug, PartialEq)]
pub struct CallSite {
    pub(crate) method: MethodId,
    pub(crate) kind: CallKind,
    pub(crate) lhs: Option<VarId>,
    pub(crate) recv: Option<VarId>,
    pub(crate) args: Vec<VarId>,
    pub(crate) target: MethodId,
}

impl CallSite {
    /// The method containing the call site.
    pub fn method(&self) -> MethodId {
        self.method
    }
    /// Virtual / special / static.
    pub fn kind(&self) -> CallKind {
        self.kind
    }
    /// The left-hand-side variable receiving the return value, if any.
    pub fn lhs(&self) -> Option<VarId> {
        self.lhs
    }
    /// The receiver variable (`None` for static calls).
    pub fn recv(&self) -> Option<VarId> {
        self.recv
    }
    /// Argument variables, excluding the receiver.
    pub fn args(&self) -> &[VarId] {
        &self.args
    }
    /// The `k`-th argument in the paper's numbering: `k == 0` is the
    /// receiver, `k >= 1` are the ordinary arguments.
    pub fn arg_k(&self, k: usize) -> Option<VarId> {
        if k == 0 {
            self.recv
        } else {
            self.args.get(k - 1).copied()
        }
    }
    /// The statically declared target method.
    pub fn target(&self) -> MethodId {
        self.target
    }
}

/// An instance-field load site `lhs = base.field`.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadSite {
    pub(crate) method: MethodId,
    pub(crate) lhs: VarId,
    pub(crate) base: VarId,
    pub(crate) field: FieldId,
}

impl LoadSite {
    /// The containing method.
    pub fn method(&self) -> MethodId {
        self.method
    }
    /// Destination variable.
    pub fn lhs(&self) -> VarId {
        self.lhs
    }
    /// Base (receiver) variable.
    pub fn base(&self) -> VarId {
        self.base
    }
    /// Accessed field.
    pub fn field(&self) -> FieldId {
        self.field
    }
}

/// An instance-field store site `base.field = rhs`.
#[derive(Clone, Debug, PartialEq)]
pub struct StoreSite {
    pub(crate) method: MethodId,
    pub(crate) base: VarId,
    pub(crate) field: FieldId,
    pub(crate) rhs: VarId,
}

impl StoreSite {
    /// The containing method.
    pub fn method(&self) -> MethodId {
        self.method
    }
    /// Base (receiver) variable.
    pub fn base(&self) -> VarId {
        self.base
    }
    /// Accessed field.
    pub fn field(&self) -> FieldId {
        self.field
    }
    /// Stored variable.
    pub fn rhs(&self) -> VarId {
        self.rhs
    }
}

/// A reference cast site `lhs = (ty) rhs`.
#[derive(Clone, Debug, PartialEq)]
pub struct CastSite {
    pub(crate) method: MethodId,
    pub(crate) lhs: VarId,
    pub(crate) rhs: VarId,
    pub(crate) ty: Type,
}

impl CastSite {
    /// The containing method.
    pub fn method(&self) -> MethodId {
        self.method
    }
    /// Destination variable.
    pub fn lhs(&self) -> VarId {
        self.lhs
    }
    /// Source variable.
    pub fn rhs(&self) -> VarId {
        self.rhs
    }
    /// Cast target type.
    pub fn ty(&self) -> Type {
        self.ty
    }
}

/// A complete program: entity tables plus the resolved class hierarchy.
///
/// Construct with [`crate::ProgramBuilder`] or via the `csc-frontend` parser.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    pub(crate) classes: Vec<Class>,
    pub(crate) fields: Vec<Field>,
    pub(crate) methods: Vec<Method>,
    pub(crate) vars: Vec<VarInfo>,
    pub(crate) objs: Vec<ObjInfo>,
    pub(crate) call_sites: Vec<CallSite>,
    pub(crate) loads: Vec<LoadSite>,
    pub(crate) stores: Vec<StoreSite>,
    pub(crate) casts: Vec<CastSite>,
    pub(crate) sigs: Vec<(String, Vec<Type>)>,
    pub(crate) entry: MethodId,
    pub(crate) object_class: ClassId,
    /// Per class: full (inherited + declared) dispatch table, signature →
    /// concrete method.
    pub(crate) vtables: Vec<HashMap<SigId, MethodId>>,
    /// Per class: inclusive ancestor chain, self first, `Object` last.
    pub(crate) ancestors: Vec<Vec<ClassId>>,
}

impl Program {
    // ---- table access -------------------------------------------------

    /// The class table.
    pub fn classes(&self) -> &[Class] {
        &self.classes
    }
    /// Looks up a class.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }
    /// The field table.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }
    /// Looks up a field.
    pub fn field(&self, id: FieldId) -> &Field {
        &self.fields[id.index()]
    }
    /// The method table.
    pub fn methods(&self) -> &[Method] {
        &self.methods
    }
    /// Looks up a method.
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.index()]
    }
    /// The variable table.
    pub fn vars(&self) -> &[VarInfo] {
        &self.vars
    }
    /// Looks up a variable.
    pub fn var(&self, id: VarId) -> &VarInfo {
        &self.vars[id.index()]
    }
    /// The allocation-site table.
    pub fn objs(&self) -> &[ObjInfo] {
        &self.objs
    }
    /// Looks up an allocation site.
    pub fn obj(&self, id: ObjId) -> &ObjInfo {
        &self.objs[id.index()]
    }
    /// The call-site table.
    pub fn call_sites(&self) -> &[CallSite] {
        &self.call_sites
    }
    /// Looks up a call site.
    pub fn call_site(&self, id: CallSiteId) -> &CallSite {
        &self.call_sites[id.index()]
    }
    /// The load-site table.
    pub fn loads(&self) -> &[LoadSite] {
        &self.loads
    }
    /// Looks up a load site.
    pub fn load(&self, id: LoadId) -> &LoadSite {
        &self.loads[id.index()]
    }
    /// The store-site table.
    pub fn stores(&self) -> &[StoreSite] {
        &self.stores
    }
    /// Looks up a store site.
    pub fn store(&self, id: StoreId) -> &StoreSite {
        &self.stores[id.index()]
    }
    /// The cast-site table.
    pub fn casts(&self) -> &[CastSite] {
        &self.casts
    }
    /// Looks up a cast site.
    pub fn cast(&self, id: CastId) -> &CastSite {
        &self.casts[id.index()]
    }
    /// The program entry point (a static, parameterless method).
    pub fn entry(&self) -> MethodId {
        self.entry
    }
    /// The root of the class hierarchy.
    pub fn object_class(&self) -> ClassId {
        self.object_class
    }
    /// The human-readable form of a signature.
    pub fn sig_name(&self, sig: SigId) -> &str {
        &self.sigs[sig.0 as usize].0
    }

    // ---- hierarchy queries ---------------------------------------------

    /// Whether `sub` is `sup` or a (transitive) subclass of it.
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        self.ancestors[sub.index()].contains(&sup)
    }

    /// Subtype test following Java's rules for this language: `null` is a
    /// subtype of every reference type; class subtyping follows the
    /// hierarchy; primitives are subtypes only of themselves.
    pub fn is_subtype(&self, sub: Type, sup: Type) -> bool {
        match (sub, sup) {
            (Type::Null, t) => t.is_reference(),
            (Type::Class(a), Type::Class(b)) => self.is_subclass(a, b),
            (a, b) => a == b,
        }
    }

    /// The inclusive ancestor chain of `class` (self first, `Object` last).
    pub fn ancestors(&self, class: ClassId) -> &[ClassId] {
        &self.ancestors[class.index()]
    }

    /// Resolves virtual dispatch: the concrete method invoked when a call
    /// whose declared target is `target` executes on a receiver of dynamic
    /// class `recv_class`. Returns `None` when the class does not (even
    /// transitively) provide a concrete implementation — which cannot happen
    /// for well-typed programs and non-abstract receivers.
    pub fn dispatch(&self, recv_class: ClassId, target: MethodId) -> Option<MethodId> {
        let sig = self.methods[target.index()].sig;
        self.vtables[recv_class.index()].get(&sig).copied()
    }

    /// Resolves virtual dispatch directly by signature: the concrete method
    /// a receiver of dynamic class `class` binds for `sig`, if any. Exposed
    /// for the incremental re-solve's dispatch-stability check, which
    /// compares base and patched vtables over the base entity domain.
    pub fn dispatch_by_sig(&self, class: ClassId, sig: SigId) -> Option<MethodId> {
        self.vtables[class.index()].get(&sig).copied()
    }

    /// Number of interned method signatures. Signature ids are allocated
    /// append-only (both by the builder and by [`crate::ProgramDelta`]), so
    /// a base program's signatures are a stable prefix of any patched
    /// program's.
    pub fn sig_count(&self) -> usize {
        self.sigs.len()
    }

    /// Whether `patched` (an append-only extension of `self` produced by
    /// [`crate::ProgramDelta::apply`]) preserves every virtual-dispatch
    /// decision over `self`'s class × signature domain: no existing
    /// `(class, signature) → method` binding changes, and no binding
    /// appears for an existing class × existing signature that was
    /// previously unbound (e.g. a delta-added override of an inherited
    /// method). New classes and new signatures may bind freely. This is the
    /// monotonicity precondition of the incremental re-solve's
    /// additions-replay path.
    pub fn dispatch_stable_under(&self, patched: &Program) -> bool {
        let old_sigs = self.sigs.len();
        for (c, old_table) in self.vtables.iter().enumerate() {
            let new_table = &patched.vtables[c];
            for (s, m) in old_table {
                if new_table.get(s) != Some(m) {
                    return false;
                }
            }
            for (s, m) in new_table {
                if (s.0 as usize) < old_sigs && old_table.get(s) != Some(m) {
                    return false;
                }
            }
        }
        true
    }

    /// Finds a field by name, searching `class` and then its ancestors.
    pub fn resolve_field(&self, class: ClassId, name: &str) -> Option<FieldId> {
        for &c in &self.ancestors[class.index()] {
            for &f in &self.classes[c.index()].fields {
                if self.fields[f.index()].name == name {
                    return Some(f);
                }
            }
        }
        None
    }

    /// Finds a method by name, searching `class` and then its ancestors.
    /// The language forbids overloading, so the name is unambiguous.
    pub fn resolve_method(&self, class: ClassId, name: &str) -> Option<MethodId> {
        for &c in &self.ancestors[class.index()] {
            for &m in &self.classes[c.index()].methods {
                if self.methods[m.index()].name == name {
                    return Some(m);
                }
            }
        }
        None
    }

    /// Finds a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name == name)
            .map(ClassId::from_usize)
    }

    /// Finds a method by `Class.method` qualified name.
    pub fn method_by_qualified_name(&self, qualified: &str) -> Option<MethodId> {
        let (cname, mname) = qualified.split_once('.')?;
        let class = self.class_by_name(cname)?;
        self.classes[class.index()]
            .methods
            .iter()
            .copied()
            .find(|&m| self.methods[m.index()].name == mname)
    }

    /// Fully qualified `Class.method` name of a method.
    pub fn qualified_name(&self, m: MethodId) -> String {
        let method = &self.methods[m.index()];
        format!(
            "{}.{}",
            self.classes[method.class.index()].name,
            method.name
        )
    }

    /// Total number of statements in all method bodies (incl. nested).
    pub fn stmt_count(&self) -> usize {
        let mut n = 0;
        for m in &self.methods {
            m.visit_stmts(|_| n += 1);
        }
        n
    }
}
