//! Human-readable pretty printing of programs, used by tests, examples, and
//! `csc-cli --dump-ir`.

use std::fmt::Write as _;

use crate::ids::{MethodId, VarId};
use crate::program::{MethodKind, Program};
use crate::stmt::{BinOp, CallKind, Stmt};
use crate::ty::Type;

impl Program {
    /// Renders a type name.
    pub fn type_name(&self, ty: Type) -> String {
        match ty {
            Type::Int => "int".to_owned(),
            Type::Boolean => "boolean".to_owned(),
            Type::Void => "void".to_owned(),
            Type::Null => "null".to_owned(),
            Type::Class(c) => self.class(c).name().to_owned(),
        }
    }

    /// Renders a variable as `name` (`vN` for unnamed temporaries).
    pub fn var_name(&self, v: VarId) -> String {
        let info = self.var(v);
        if info.name().is_empty() {
            format!("{v}")
        } else {
            info.name().to_owned()
        }
    }

    /// Pretty-prints one method (signature plus indented body).
    pub fn display_method(&self, m: MethodId) -> String {
        let method = self.method(m);
        let mut out = String::new();
        let kind = match method.kind() {
            MethodKind::Static => "static ",
            MethodKind::Constructor => "init ",
            MethodKind::Instance => "",
        };
        let params: Vec<String> = method
            .params()
            .iter()
            .map(|&p| format!("{} {}", self.type_name(self.var(p).ty()), self.var_name(p)))
            .collect();
        let _ = writeln!(
            out,
            "{}{} {}.{}({}) {{",
            kind,
            self.type_name(method.ret_ty()),
            self.class(method.class()).name(),
            method.name(),
            params.join(", ")
        );
        self.fmt_block(method.body(), 1, &mut out);
        out.push_str("}\n");
        out
    }

    fn fmt_block(&self, body: &[Stmt], depth: usize, out: &mut String) {
        for s in body {
            self.fmt_stmt(s, depth, out);
        }
    }

    fn fmt_stmt(&self, s: &Stmt, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match s {
            Stmt::New { lhs, obj } => {
                let _ = writeln!(
                    out,
                    "{pad}{} = new {}(); // {}",
                    self.var_name(*lhs),
                    self.class(self.obj(*obj).class()).name(),
                    obj
                );
            }
            Stmt::Assign { lhs, rhs } => {
                let _ = writeln!(
                    out,
                    "{pad}{} = {};",
                    self.var_name(*lhs),
                    self.var_name(*rhs)
                );
            }
            Stmt::Cast(id) => {
                let c = self.cast(*id);
                let _ = writeln!(
                    out,
                    "{pad}{} = ({}) {};",
                    self.var_name(c.lhs()),
                    self.type_name(c.ty()),
                    self.var_name(c.rhs())
                );
            }
            Stmt::Load(id) => {
                let l = self.load(*id);
                let _ = writeln!(
                    out,
                    "{pad}{} = {}.{};",
                    self.var_name(l.lhs()),
                    self.var_name(l.base()),
                    self.field(l.field()).name()
                );
            }
            Stmt::Store(id) => {
                let st = self.store(*id);
                let _ = writeln!(
                    out,
                    "{pad}{}.{} = {};",
                    self.var_name(st.base()),
                    self.field(st.field()).name(),
                    self.var_name(st.rhs())
                );
            }
            Stmt::Call(id) => {
                let cs = self.call_site(*id);
                let args: Vec<String> = cs.args().iter().map(|&a| self.var_name(a)).collect();
                let lhs = cs
                    .lhs()
                    .map(|l| format!("{} = ", self.var_name(l)))
                    .unwrap_or_default();
                let target = self.qualified_name(cs.target());
                let kind = match cs.kind() {
                    CallKind::Virtual => "",
                    CallKind::Special => "/*special*/ ",
                    CallKind::Static => "/*static*/ ",
                };
                match cs.recv() {
                    Some(r) => {
                        let _ = writeln!(
                            out,
                            "{pad}{lhs}{kind}{}.{}({}); // -> {target} [{id}]",
                            self.var_name(r),
                            self.method(cs.target()).name(),
                            args.join(", ")
                        );
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "{pad}{lhs}{kind}{target}({}); // [{id}]",
                            args.join(", ")
                        );
                    }
                }
            }
            Stmt::Return => {
                let _ = writeln!(out, "{pad}return;");
            }
            Stmt::ConstInt { lhs, value } => {
                let _ = writeln!(out, "{pad}{} = {};", self.var_name(*lhs), value);
            }
            Stmt::ConstBool { lhs, value } => {
                let _ = writeln!(out, "{pad}{} = {};", self.var_name(*lhs), value);
            }
            Stmt::ConstNull { lhs } => {
                let _ = writeln!(out, "{pad}{} = null;", self.var_name(*lhs));
            }
            Stmt::BinOp { lhs, op, a, b } => {
                let op_str = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Rem => "%",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::EqInt => "==",
                    BinOp::NeInt => "!=",
                    BinOp::EqRef => "==",
                    BinOp::NeRef => "!=",
                };
                let _ = writeln!(
                    out,
                    "{pad}{} = {} {} {};",
                    self.var_name(*lhs),
                    self.var_name(*a),
                    op_str,
                    self.var_name(*b)
                );
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let _ = writeln!(out, "{pad}if ({}) {{", self.var_name(*cond));
                self.fmt_block(then_branch, depth + 1, out);
                if else_branch.is_empty() {
                    let _ = writeln!(out, "{pad}}}");
                } else {
                    let _ = writeln!(out, "{pad}}} else {{");
                    self.fmt_block(else_branch, depth + 1, out);
                    let _ = writeln!(out, "{pad}}}");
                }
            }
            Stmt::While {
                cond_stmts,
                cond,
                body,
            } => {
                let _ = writeln!(out, "{pad}while (/*cond:*/ {}) {{", self.var_name(*cond));
                self.fmt_block(cond_stmts, depth + 1, out);
                let _ = writeln!(out, "{pad}  /*body:*/");
                self.fmt_block(body, depth + 1, out);
                let _ = writeln!(out, "{pad}}}");
            }
        }
    }

    /// Pretty-prints the whole program.
    pub fn display_program(&self) -> String {
        let mut out = String::new();
        for (i, class) in self.classes.iter().enumerate() {
            let sup = class
                .superclass()
                .map(|s| format!(" extends {}", self.class(s).name()))
                .unwrap_or_default();
            let _ = writeln!(out, "class {}{} {{", class.name(), sup);
            for &f in class.fields() {
                let fd = self.field(f);
                let _ = writeln!(out, "  {} {};", self.type_name(fd.ty()), fd.name());
            }
            for &m in class.methods() {
                if self.method(m).is_abstract() {
                    let _ = writeln!(out, "  abstract {};", self.method(m).name());
                } else {
                    for line in self.display_method(m).lines() {
                        let _ = writeln!(out, "  {line}");
                    }
                }
            }
            let _ = writeln!(out, "}}");
            if i + 1 < self.classes.len() {
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::program::MethodKind;
    use crate::ty::Type;

    #[test]
    fn display_contains_expected_fragments() {
        let mut pb = ProgramBuilder::new();
        let object = pb.object_class();
        let carton = pb.add_class("Carton", None);
        let item_f = pb.add_field(carton, "item", Type::Class(object));
        let mut mb = pb.begin_method(
            carton,
            "setItem",
            MethodKind::Instance,
            &[("item", Type::Class(object))],
            Type::Void,
        );
        let this = mb.this().unwrap();
        let p0 = mb.param(0);
        mb.store(this, item_f, p0);
        mb.finish();
        let main_class = pb.add_class("Main", None);
        let main = pb
            .begin_method(main_class, "main", MethodKind::Static, &[], Type::Void)
            .finish();
        pb.set_entry(main);
        let p = pb.finish().unwrap();
        let text = p.display_program();
        assert!(text.contains("class Carton extends Object {"), "{text}");
        assert!(text.contains("this.item = item;"), "{text}");
        assert!(text.contains("void Carton.setItem(Object item)"), "{text}");
    }
}
