//! Statements of the IR.
//!
//! Pointer-relevant statements (allocation, copy, cast, field load/store,
//! invocation) reference site tables in [`crate::Program`] by id, so that
//! analyses can address them with dense indices. Control flow (`if`/`while`)
//! is kept structured: the pointer analysis is flow-insensitive and simply
//! walks the statement tree, while the concrete interpreter in `csc-interp`
//! executes it.

use crate::ids::{CallSiteId, CastId, LoadId, ObjId, StoreId, VarId};

/// Integer / boolean binary operators (used only by the interpreter and
/// by workload programs to build loop conditions; they have no effect on
/// points-to information).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer remainder. Division by zero yields zero (the interpreter is
    /// total by construction).
    Rem,
    /// Less-than comparison producing a boolean.
    Lt,
    /// Less-or-equal comparison producing a boolean.
    Le,
    /// Equality comparison over integers producing a boolean.
    EqInt,
    /// Inequality comparison over integers producing a boolean.
    NeInt,
    /// Reference identity (`a == b` over objects / `null`). No effect on
    /// points-to information; the interpreter compares heap identities.
    EqRef,
    /// Reference non-identity.
    NeRef,
}

impl BinOp {
    /// Whether the operator produces a boolean (comparison) rather than an
    /// integer.
    #[inline]
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::EqInt | BinOp::NeInt | BinOp::EqRef | BinOp::NeRef
        )
    }
}

/// How a call site binds its target method.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum CallKind {
    /// Virtual dispatch on the runtime type of the receiver.
    Virtual,
    /// Exact invocation of the named method on `this`/a known receiver:
    /// constructor calls (`<init>`) and `super` calls.
    Special,
    /// Static method invocation (no receiver).
    Static,
}

/// A statement.
#[allow(missing_docs)] // variant fields are named after the paper's formalism
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `lhs = new T()` — the allocation site `obj` carries the class.
    /// Constructor invocation is a separate [`Stmt::Call`] emitted by the
    /// frontend right after the allocation.
    New { lhs: VarId, obj: ObjId },
    /// `lhs = rhs` between reference variables.
    Assign { lhs: VarId, rhs: VarId },
    /// `lhs = (T) rhs`; the cast site table carries the target type.
    Cast(CastId),
    /// `lhs = base.f` (site table: [`crate::LoadSite`]).
    Load(LoadId),
    /// `base.f = rhs` (site table: [`crate::StoreSite`]).
    Store(StoreId),
    /// A method invocation (site table: [`crate::CallSite`]).
    Call(CallSiteId),
    /// Return from the enclosing method. The frontend lowers `return e;`
    /// into an assignment to the method's synthetic return variable followed
    /// by a bare `Return`, so analyses only ever deal with the return
    /// variable.
    Return,
    /// `lhs = <integer literal>`.
    ConstInt { lhs: VarId, value: i64 },
    /// `lhs = <boolean literal>`.
    ConstBool { lhs: VarId, value: bool },
    /// `lhs = null`.
    ConstNull { lhs: VarId },
    /// `lhs = a <op> b` over primitives.
    BinOp {
        lhs: VarId,
        op: BinOp,
        a: VarId,
        b: VarId,
    },
    /// Structured conditional. `cond` must hold a boolean.
    If {
        cond: VarId,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
    },
    /// Structured loop. Before every iteration check (including the first),
    /// the interpreter executes `cond_stmts` and then tests `cond`.
    While {
        cond_stmts: Vec<Stmt>,
        cond: VarId,
        body: Vec<Stmt>,
    },
}

impl Stmt {
    /// Depth-first visit of this statement and all statements nested inside
    /// `if`/`while` blocks.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        f(self);
        match self {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                for s in then_branch {
                    s.visit(f);
                }
                for s in else_branch {
                    s.visit(f);
                }
            }
            Stmt::While {
                cond_stmts, body, ..
            } => {
                for s in cond_stmts {
                    s.visit(f);
                }
                for s in body {
                    s.visit(f);
                }
            }
            _ => {}
        }
    }
}

/// Visits every statement in a body, including nested ones.
pub fn visit_all<'a>(body: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for s in body {
        s.visit(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn comparison_ops() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }

    #[test]
    fn visit_recurses_into_blocks() {
        let body = vec![
            Stmt::ConstInt {
                lhs: v(0),
                value: 1,
            },
            Stmt::If {
                cond: v(1),
                then_branch: vec![Stmt::Assign {
                    lhs: v(2),
                    rhs: v(3),
                }],
                else_branch: vec![Stmt::While {
                    cond_stmts: vec![Stmt::ConstBool {
                        lhs: v(4),
                        value: true,
                    }],
                    cond: v(4),
                    body: vec![Stmt::Return],
                }],
            },
        ];
        let mut n = 0;
        visit_all(&body, &mut |_| n += 1);
        // ConstInt, If, Assign, While, ConstBool, Return
        assert_eq!(n, 6);
    }
}
