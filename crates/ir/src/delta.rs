//! Program deltas: append-only entity growth plus statement removal.
//!
//! A [`ProgramDelta`] is a small edit script against a base [`Program`]:
//! add classes, methods, locals, and statements, or remove existing
//! top-level statements. [`ProgramDelta::apply`] produces the *patched*
//! program together with [`DeltaEffects`] describing exactly what changed
//! — the input the incremental solver needs to localize re-propagation.
//!
//! Design rules (what keeps incremental re-solve tractable):
//!
//! * **Entity ids are stable.** All additions append to the entity tables;
//!   nothing is renumbered. A `VarId`/`MethodId`/`ObjId` valid in the base
//!   program means the same thing in the patched program.
//! * **Additions are predictable.** Ids allocated by a delta are assigned
//!   in op order using the same allocation rules as
//!   [`crate::ProgramBuilder`] (method vars in `this`/params/`@ret` order,
//!   site-table entries appended), so a delta author can reference an
//!   entity added earlier in the *same* delta by its computed id.
//! * **Removal keeps site tables intact.** `RemoveStmt` deletes the
//!   statement from the method body only; orphaned site-table entries
//!   (loads/stores/calls/casts/objects) remain, unreferenced. Both the
//!   incremental and the from-scratch solver consume the same patched
//!   program, so the orphans are observationally irrelevant.
//!
//! The binary codec (`to_bytes`/`from_bytes`) mirrors
//! [`crate::Program::to_bytes`]: versioned magic header, little-endian,
//! every read bounds-checked.

use crate::bytes::DecodeError;
use crate::ids::{CallSiteId, CastId, ClassId, FieldId, LoadId, MethodId, ObjId, StoreId, VarId};
use crate::program::{
    CallSite, CastSite, Class, Field, LoadSite, Method, MethodKind, ObjInfo, Program, StoreSite,
    VarInfo,
};
use crate::stmt::{CallKind, Stmt};
use crate::ty::Type;

/// A statement to append to a method body. Mirrors the pointer-relevant
/// subset of [`Stmt`], with site payloads inline (the site-table entry is
/// allocated at apply time).
#[derive(Clone, Debug, PartialEq)]
pub enum DeltaStmt {
    /// `lhs = new C()` — allocates a fresh object of `class`.
    New {
        /// Target variable.
        lhs: VarId,
        /// Class of the allocated object.
        class: ClassId,
    },
    /// `lhs = rhs`.
    Assign {
        /// Target variable.
        lhs: VarId,
        /// Source variable.
        rhs: VarId,
    },
    /// `lhs = (C) rhs`.
    Cast {
        /// Target variable.
        lhs: VarId,
        /// Source variable.
        rhs: VarId,
        /// Filter class.
        class: ClassId,
    },
    /// `lhs = base.field`.
    Load {
        /// Target variable.
        lhs: VarId,
        /// Base variable.
        base: VarId,
        /// Loaded field.
        field: FieldId,
    },
    /// `base.field = rhs`.
    Store {
        /// Base variable.
        base: VarId,
        /// Stored field.
        field: FieldId,
        /// Source variable.
        rhs: VarId,
    },
    /// A call. `recv = None` targets a static method; otherwise a virtual
    /// call dispatched on `recv`'s runtime class against `target`'s
    /// signature.
    Call {
        /// Result variable, if the result is used.
        lhs: Option<VarId>,
        /// Receiver (`None` for static calls).
        recv: Option<VarId>,
        /// Declared target method.
        target: MethodId,
        /// Arguments (excluding the receiver), one per declared parameter.
        args: Vec<VarId>,
    },
}

/// One edit operation. Ops apply in order; ids allocated by earlier ops are
/// valid in later ones.
#[derive(Clone, Debug, PartialEq)]
pub enum DeltaOp {
    /// Appends a class (optionally with reference-typed fields).
    AddClass {
        /// Class name (must be fresh).
        name: String,
        /// Superclass (defaults to `Object` at apply time when `None`).
        superclass: Option<ClassId>,
        /// Declared fields: `(name, type class)`.
        fields: Vec<(String, ClassId)>,
    },
    /// Appends an empty method; its body is filled by later `AddStmt` ops.
    AddMethod {
        /// Declaring class.
        class: ClassId,
        /// Method name (must be fresh within the class).
        name: String,
        /// Declared parameter type classes.
        params: Vec<ClassId>,
        /// Return type class (`None` = void).
        ret: Option<ClassId>,
        /// Whether the method is static (instance methods get a `this`
        /// variable and participate in dynamic dispatch).
        is_static: bool,
    },
    /// Appends a local variable to an existing method.
    AddLocal {
        /// Owning method.
        method: MethodId,
        /// Declared type class.
        class: ClassId,
    },
    /// Appends a statement to the end of a method body.
    AddStmt {
        /// Target method.
        method: MethodId,
        /// The statement.
        stmt: DeltaStmt,
    },
    /// Removes the `index`-th *top-level* statement of a method body
    /// (compound statements are removed with their whole subtree).
    RemoveStmt {
        /// Target method.
        method: MethodId,
        /// Top-level body index at the time this op applies.
        index: u32,
    },
}

/// An edit script against a base program.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProgramDelta {
    /// The operations, applied in order.
    pub ops: Vec<DeltaOp>,
}

/// Entity-table sizes of a program — the "old domain" boundary between base
/// and patched entities.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EntityCounts {
    /// Number of classes.
    pub classes: usize,
    /// Number of fields.
    pub fields: usize,
    /// Number of methods.
    pub methods: usize,
    /// Number of variables.
    pub vars: usize,
    /// Number of allocation sites.
    pub objs: usize,
    /// Number of call sites.
    pub call_sites: usize,
    /// Number of load sites.
    pub loads: usize,
    /// Number of store sites.
    pub stores: usize,
    /// Number of cast sites.
    pub casts: usize,
}

impl EntityCounts {
    /// The sizes of `program`'s entity tables.
    pub fn of(program: &Program) -> Self {
        EntityCounts {
            classes: program.classes().len(),
            fields: program.fields().len(),
            methods: program.methods().len(),
            vars: program.vars().len(),
            objs: program.objs().len(),
            call_sites: program.call_sites().len(),
            loads: program.loads().len(),
            stores: program.stores().len(),
            casts: program.casts().len(),
        }
    }
}

/// What a delta actually did to the program — the incremental solver's
/// re-propagation frontier.
#[derive(Clone, Debug, Default)]
pub struct DeltaEffects {
    /// Entity counts of the *base* program (everything at an index below
    /// these counts predates the delta).
    pub base: EntityCounts,
    /// Lowered statements appended to existing or new method bodies, with
    /// their allocated site-table ids.
    pub added_stmts: Vec<(MethodId, Stmt)>,
    /// Statement trees removed from method bodies.
    pub removed_stmts: Vec<(MethodId, Stmt)>,
    /// Methods appended by the delta.
    pub added_methods: Vec<MethodId>,
    /// Classes appended by the delta.
    pub added_classes: Vec<ClassId>,
    /// Variables appended by the delta (new methods' vars and `AddLocal`s).
    pub added_vars: Vec<VarId>,
}

impl DeltaEffects {
    /// Whether the delta only added program elements (the monotone case:
    /// incremental re-solve never needs to retract facts).
    pub fn additions_only(&self) -> bool {
        self.removed_stmts.is_empty()
    }
}

/// Why a delta cannot apply to a base program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// An id referenced an entity that does not exist (entity kind, raw id).
    BadId(&'static str, u32),
    /// A statement referenced a variable not owned by the stated method.
    ForeignVar(MethodId, VarId),
    /// A class or member name collided with an existing one.
    DuplicateName(String),
    /// A call's argument count did not match the target's parameter count.
    ArityMismatch(MethodId),
    /// A call's receiver presence did not match the target's staticness.
    BadReceiver(MethodId),
    /// A load/store used a non-reference field.
    PrimitiveField(FieldId),
    /// `RemoveStmt` index out of bounds.
    BadRemoveIndex(MethodId, u32),
    /// A method body op targeted an abstract method.
    AbstractBody(MethodId),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::BadId(kind, id) => write!(f, "unknown {kind} id {id}"),
            DeltaError::ForeignVar(m, v) => {
                write!(f, "variable {} not owned by method {}", v.raw(), m.raw())
            }
            DeltaError::DuplicateName(n) => write!(f, "duplicate name {n:?}"),
            DeltaError::ArityMismatch(m) => {
                write!(f, "argument count mismatch for target {}", m.raw())
            }
            DeltaError::BadReceiver(m) => {
                write!(f, "receiver presence mismatch for target {}", m.raw())
            }
            DeltaError::PrimitiveField(id) => {
                write!(f, "field {} is not reference-typed", id.raw())
            }
            DeltaError::BadRemoveIndex(m, i) => {
                write!(f, "remove index {i} out of bounds in method {}", m.raw())
            }
            DeltaError::AbstractBody(m) => {
                write!(f, "method {} is abstract and has no body", m.raw())
            }
        }
    }
}

impl std::error::Error for DeltaError {}

impl ProgramDelta {
    /// Applies the delta to `base`, producing the patched program and the
    /// effect summary. `base` is not modified; entity ids stay stable (see
    /// the module docs).
    pub fn apply(&self, base: &Program) -> Result<(Program, DeltaEffects), DeltaError> {
        let mut p = base.clone();
        let mut fx = DeltaEffects {
            base: EntityCounts::of(base),
            ..DeltaEffects::default()
        };
        for op in &self.ops {
            apply_op(&mut p, op, &mut fx)?;
        }
        rebuild_vtables(&mut p);
        Ok((p, fx))
    }
}

fn check_class(p: &Program, c: ClassId) -> Result<(), DeltaError> {
    if c.index() >= p.classes().len() {
        return Err(DeltaError::BadId("class", c.raw()));
    }
    Ok(())
}

fn check_method(p: &Program, m: MethodId) -> Result<(), DeltaError> {
    if m.index() >= p.methods().len() {
        return Err(DeltaError::BadId("method", m.raw()));
    }
    Ok(())
}

fn check_method_var(p: &Program, m: MethodId, v: VarId) -> Result<(), DeltaError> {
    if v.index() >= p.vars().len() {
        return Err(DeltaError::BadId("var", v.raw()));
    }
    if p.var(v).method() != m {
        return Err(DeltaError::ForeignVar(m, v));
    }
    Ok(())
}

fn check_ref_field(p: &Program, f: FieldId) -> Result<(), DeltaError> {
    if f.index() >= p.fields().len() {
        return Err(DeltaError::BadId("field", f.raw()));
    }
    if !p.field(f).ty().is_reference() {
        return Err(DeltaError::PrimitiveField(f));
    }
    Ok(())
}

fn apply_op(p: &mut Program, op: &DeltaOp, fx: &mut DeltaEffects) -> Result<(), DeltaError> {
    match op {
        DeltaOp::AddClass {
            name,
            superclass,
            fields,
        } => {
            if p.class_by_name(name).is_some() {
                return Err(DeltaError::DuplicateName(name.clone()));
            }
            let superclass = match superclass {
                Some(s) => {
                    check_class(p, *s)?;
                    Some(*s)
                }
                None => Some(p.object_class()),
            };
            let id = ClassId::from_usize(p.classes.len());
            let mut field_ids = Vec::with_capacity(fields.len());
            let mut seen = std::collections::HashSet::new();
            for (fname, fclass) in fields {
                check_class(p, *fclass)?;
                if !seen.insert(fname.clone()) {
                    return Err(DeltaError::DuplicateName(fname.clone()));
                }
                let fid = FieldId::from_usize(p.fields.len());
                p.fields.push(Field {
                    name: fname.clone(),
                    class: id,
                    ty: Type::Class(*fclass),
                });
                field_ids.push(fid);
            }
            p.classes.push(Class {
                name: name.clone(),
                superclass,
                fields: field_ids,
                methods: Vec::new(),
                is_abstract: false,
            });
            // Ancestor chain: self first, then the (already valid) parent
            // chain. Old chains are unaffected — superclasses are immutable.
            let mut chain = vec![id];
            chain.extend(
                p.ancestors[superclass.expect("defaulted").index()]
                    .iter()
                    .copied(),
            );
            p.ancestors.push(chain);
            fx.added_classes.push(id);
        }
        DeltaOp::AddMethod {
            class,
            name,
            params,
            ret,
            is_static,
        } => {
            check_class(p, *class)?;
            for c in params {
                check_class(p, *c)?;
            }
            if let Some(r) = ret {
                check_class(p, *r)?;
            }
            if p.classes[class.index()]
                .methods
                .iter()
                .any(|&m| p.methods[m.index()].name == *name)
            {
                return Err(DeltaError::DuplicateName(name.clone()));
            }
            let id = MethodId::from_usize(p.methods.len());
            let param_types: Vec<Type> = params.iter().map(|&c| Type::Class(c)).collect();
            let ret_ty = ret.map_or(Type::Void, Type::Class);
            let sig = intern_sig(p, name, &param_types);
            // Variable allocation mirrors `ProgramBuilder::push_method`:
            // `this` (instance only), then parameters, then `@ret`.
            let mut new_var = |p: &mut Program, n: &str, ty: Type| {
                let v = VarId::from_usize(p.vars.len());
                p.vars.push(VarInfo {
                    name: n.to_owned(),
                    method: id,
                    ty,
                });
                fx.added_vars.push(v);
                v
            };
            let this_var = if *is_static {
                None
            } else {
                Some(new_var(p, "this", Type::Class(*class)))
            };
            let param_vars: Vec<VarId> = param_types
                .iter()
                .enumerate()
                .map(|(k, &t)| new_var(p, &format!("p{k}"), t))
                .collect();
            let ret_var = if ret_ty == Type::Void {
                None
            } else {
                Some(new_var(p, "@ret", ret_ty))
            };
            let mut vars: Vec<VarId> = Vec::new();
            vars.extend(this_var);
            vars.extend(param_vars.iter().copied());
            vars.extend(ret_var);
            p.methods.push(Method {
                name: name.clone(),
                class: *class,
                kind: if *is_static {
                    MethodKind::Static
                } else {
                    MethodKind::Instance
                },
                sig,
                param_types,
                ret_ty,
                this_var,
                params: param_vars,
                ret_var,
                vars,
                body: Vec::new(),
                is_abstract: false,
            });
            p.classes[class.index()].methods.push(id);
            fx.added_methods.push(id);
        }
        DeltaOp::AddLocal { method, class } => {
            check_method(p, *method)?;
            check_class(p, *class)?;
            let v = VarId::from_usize(p.vars.len());
            let n = p.methods[method.index()].vars.len();
            p.vars.push(VarInfo {
                name: format!("@d{n}"),
                method: *method,
                ty: Type::Class(*class),
            });
            p.methods[method.index()].vars.push(v);
            fx.added_vars.push(v);
        }
        DeltaOp::AddStmt { method, stmt } => {
            check_method(p, *method)?;
            if p.method(*method).is_abstract() {
                return Err(DeltaError::AbstractBody(*method));
            }
            let lowered = lower_stmt(p, *method, stmt)?;
            p.methods[method.index()].body.push(lowered.clone());
            fx.added_stmts.push((*method, lowered));
        }
        DeltaOp::RemoveStmt { method, index } => {
            check_method(p, *method)?;
            let body = &mut p.methods[method.index()].body;
            let i = *index as usize;
            if i >= body.len() {
                return Err(DeltaError::BadRemoveIndex(*method, *index));
            }
            let removed = body.remove(i);
            // Removing a statement this same delta appended is a net
            // no-op: cancel the `added_stmts` record instead of reporting
            // a removal, so effects describe base-relative change only.
            if let Some(k) = fx
                .added_stmts
                .iter()
                .rposition(|(m, s)| m == method && *s == removed)
            {
                fx.added_stmts.remove(k);
            } else {
                fx.removed_stmts.push((*method, removed));
            }
        }
    }
    Ok(())
}

fn lower_stmt(p: &mut Program, method: MethodId, stmt: &DeltaStmt) -> Result<Stmt, DeltaError> {
    Ok(match stmt {
        DeltaStmt::New { lhs, class } => {
            check_method_var(p, method, *lhs)?;
            check_class(p, *class)?;
            let obj = ObjId::from_usize(p.objs.len());
            p.objs.push(ObjInfo {
                class: *class,
                method,
                label: format!("{}@delta{}", p.classes[class.index()].name, obj.raw()),
            });
            Stmt::New { lhs: *lhs, obj }
        }
        DeltaStmt::Assign { lhs, rhs } => {
            check_method_var(p, method, *lhs)?;
            check_method_var(p, method, *rhs)?;
            Stmt::Assign {
                lhs: *lhs,
                rhs: *rhs,
            }
        }
        DeltaStmt::Cast { lhs, rhs, class } => {
            check_method_var(p, method, *lhs)?;
            check_method_var(p, method, *rhs)?;
            check_class(p, *class)?;
            let id = CastId::from_usize(p.casts.len());
            p.casts.push(CastSite {
                method,
                lhs: *lhs,
                rhs: *rhs,
                ty: Type::Class(*class),
            });
            Stmt::Cast(id)
        }
        DeltaStmt::Load { lhs, base, field } => {
            check_method_var(p, method, *lhs)?;
            check_method_var(p, method, *base)?;
            check_ref_field(p, *field)?;
            let id = LoadId::from_usize(p.loads.len());
            p.loads.push(LoadSite {
                method,
                lhs: *lhs,
                base: *base,
                field: *field,
            });
            Stmt::Load(id)
        }
        DeltaStmt::Store { base, field, rhs } => {
            check_method_var(p, method, *base)?;
            check_method_var(p, method, *rhs)?;
            check_ref_field(p, *field)?;
            let id = StoreId::from_usize(p.stores.len());
            p.stores.push(StoreSite {
                method,
                base: *base,
                field: *field,
                rhs: *rhs,
            });
            Stmt::Store(id)
        }
        DeltaStmt::Call {
            lhs,
            recv,
            target,
            args,
        } => {
            check_method(p, *target)?;
            let (is_static, nparams) = {
                let t = p.method(*target);
                (t.kind() == MethodKind::Static, t.params().len())
            };
            if is_static != recv.is_none() {
                return Err(DeltaError::BadReceiver(*target));
            }
            if args.len() != nparams {
                return Err(DeltaError::ArityMismatch(*target));
            }
            if let Some(l) = lhs {
                check_method_var(p, method, *l)?;
            }
            if let Some(r) = recv {
                check_method_var(p, method, *r)?;
            }
            for a in args {
                check_method_var(p, method, *a)?;
            }
            let id = CallSiteId::from_usize(p.call_sites.len());
            p.call_sites.push(CallSite {
                method,
                kind: if is_static {
                    CallKind::Static
                } else {
                    CallKind::Virtual
                },
                lhs: *lhs,
                recv: *recv,
                args: args.clone(),
                target: *target,
            });
            Stmt::Call(id)
        }
    })
}

fn intern_sig(p: &mut Program, name: &str, params: &[Type]) -> crate::program::SigId {
    for (i, (n, tys)) in p.sigs.iter().enumerate() {
        if n == name && tys == params {
            return crate::program::SigId(u32::try_from(i).expect("sig count fits u32"));
        }
    }
    let id = crate::program::SigId(u32::try_from(p.sigs.len()).expect("too many signatures"));
    p.sigs.push((name.to_owned(), params.to_vec()));
    id
}

/// Recomputes every class's dispatch table with the builder's algorithm
/// (parents first by ancestor-chain length, parent clone + own concrete
/// non-static methods). Additions can extend or override old entries; the
/// incremental solver compares old vs new tables to decide whether existing
/// dispatch decisions survived.
fn rebuild_vtables(p: &mut Program) {
    let n = p.classes.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&c| p.ancestors[c].len());
    let mut vtables: Vec<std::collections::HashMap<crate::program::SigId, MethodId>> =
        vec![std::collections::HashMap::new(); n];
    for &c in &order {
        let mut table = match p.classes[c].superclass {
            Some(sup) => vtables[sup.index()].clone(),
            None => std::collections::HashMap::new(),
        };
        for &m in &p.classes[c].methods {
            let method = &p.methods[m.index()];
            if method.kind != MethodKind::Static && !method.is_abstract {
                table.insert(method.sig, m);
            }
        }
        vtables[c] = table;
    }
    p.vtables = vtables;
}

// ---- codec ----------------------------------------------------------------

const MAGIC: &[u8; 6] = b"CSCDL\0";
const VERSION: u32 = 1;

struct W {
    buf: Vec<u8>,
}

impl W {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn len(&mut self, n: usize) {
        self.u32(u32::try_from(n).expect("length fits u32"));
    }
    fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn opt32(&mut self, v: Option<u32>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
        }
    }
}

struct R<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl R<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::UnexpectedEof)?;
        if end > self.buf.len() {
            return Err(DecodeError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn bounded_len(&mut self, min_elem: usize) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem.max(1)) > self.buf.len() - self.pos {
            return Err(DecodeError::UnexpectedEof);
        }
        Ok(n)
    }
    fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.bounded_len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Corrupt("non-UTF-8 string"))
    }
    fn opt32(&mut self) -> Result<Option<u32>, DecodeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

impl ProgramDelta {
    /// Encodes the delta into the versioned binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = W {
            buf: Vec::with_capacity(256),
        };
        w.buf.extend_from_slice(MAGIC);
        w.u32(VERSION);
        w.len(self.ops.len());
        for op in &self.ops {
            match op {
                DeltaOp::AddClass {
                    name,
                    superclass,
                    fields,
                } => {
                    w.u8(0);
                    w.str(name);
                    w.opt32(superclass.map(|c| c.raw()));
                    w.len(fields.len());
                    for (n, c) in fields {
                        w.str(n);
                        w.u32(c.raw());
                    }
                }
                DeltaOp::AddMethod {
                    class,
                    name,
                    params,
                    ret,
                    is_static,
                } => {
                    w.u8(1);
                    w.u32(class.raw());
                    w.str(name);
                    w.len(params.len());
                    for c in params {
                        w.u32(c.raw());
                    }
                    w.opt32(ret.map(|c| c.raw()));
                    w.u8(u8::from(*is_static));
                }
                DeltaOp::AddLocal { method, class } => {
                    w.u8(2);
                    w.u32(method.raw());
                    w.u32(class.raw());
                }
                DeltaOp::AddStmt { method, stmt } => {
                    w.u8(3);
                    w.u32(method.raw());
                    match stmt {
                        DeltaStmt::New { lhs, class } => {
                            w.u8(0);
                            w.u32(lhs.raw());
                            w.u32(class.raw());
                        }
                        DeltaStmt::Assign { lhs, rhs } => {
                            w.u8(1);
                            w.u32(lhs.raw());
                            w.u32(rhs.raw());
                        }
                        DeltaStmt::Cast { lhs, rhs, class } => {
                            w.u8(2);
                            w.u32(lhs.raw());
                            w.u32(rhs.raw());
                            w.u32(class.raw());
                        }
                        DeltaStmt::Load { lhs, base, field } => {
                            w.u8(3);
                            w.u32(lhs.raw());
                            w.u32(base.raw());
                            w.u32(field.raw());
                        }
                        DeltaStmt::Store { base, field, rhs } => {
                            w.u8(4);
                            w.u32(base.raw());
                            w.u32(field.raw());
                            w.u32(rhs.raw());
                        }
                        DeltaStmt::Call {
                            lhs,
                            recv,
                            target,
                            args,
                        } => {
                            w.u8(5);
                            w.opt32(lhs.map(|v| v.raw()));
                            w.opt32(recv.map(|v| v.raw()));
                            w.u32(target.raw());
                            w.len(args.len());
                            for a in args {
                                w.u32(a.raw());
                            }
                        }
                    }
                }
                DeltaOp::RemoveStmt { method, index } => {
                    w.u8(4);
                    w.u32(method.raw());
                    w.u32(*index);
                }
            }
        }
        w.buf
    }

    /// Decodes a delta previously produced by [`ProgramDelta::to_bytes`].
    /// Every read is bounds-checked; truncated or corrupt input yields a
    /// [`DecodeError`].
    pub fn from_bytes(bytes: &[u8]) -> Result<ProgramDelta, DecodeError> {
        let mut r = R { buf: bytes, pos: 0 };
        if r.take(MAGIC.len())? != MAGIC || r.u32()? != VERSION {
            return Err(DecodeError::BadHeader);
        }
        let n = r.bounded_len(5)?;
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            ops.push(match r.u8()? {
                0 => {
                    let name = r.str()?;
                    let superclass = r.opt32()?.map(ClassId::new);
                    let nf = r.bounded_len(8)?;
                    let mut fields = Vec::with_capacity(nf);
                    for _ in 0..nf {
                        let fname = r.str()?;
                        fields.push((fname, ClassId::new(r.u32()?)));
                    }
                    DeltaOp::AddClass {
                        name,
                        superclass,
                        fields,
                    }
                }
                1 => {
                    let class = ClassId::new(r.u32()?);
                    let name = r.str()?;
                    let np = r.bounded_len(4)?;
                    let mut params = Vec::with_capacity(np);
                    for _ in 0..np {
                        params.push(ClassId::new(r.u32()?));
                    }
                    let ret = r.opt32()?.map(ClassId::new);
                    let is_static = r.u8()? != 0;
                    DeltaOp::AddMethod {
                        class,
                        name,
                        params,
                        ret,
                        is_static,
                    }
                }
                2 => DeltaOp::AddLocal {
                    method: MethodId::new(r.u32()?),
                    class: ClassId::new(r.u32()?),
                },
                3 => {
                    let method = MethodId::new(r.u32()?);
                    let stmt = match r.u8()? {
                        0 => DeltaStmt::New {
                            lhs: VarId::new(r.u32()?),
                            class: ClassId::new(r.u32()?),
                        },
                        1 => DeltaStmt::Assign {
                            lhs: VarId::new(r.u32()?),
                            rhs: VarId::new(r.u32()?),
                        },
                        2 => DeltaStmt::Cast {
                            lhs: VarId::new(r.u32()?),
                            rhs: VarId::new(r.u32()?),
                            class: ClassId::new(r.u32()?),
                        },
                        3 => DeltaStmt::Load {
                            lhs: VarId::new(r.u32()?),
                            base: VarId::new(r.u32()?),
                            field: FieldId::new(r.u32()?),
                        },
                        4 => DeltaStmt::Store {
                            base: VarId::new(r.u32()?),
                            field: FieldId::new(r.u32()?),
                            rhs: VarId::new(r.u32()?),
                        },
                        5 => {
                            let lhs = r.opt32()?.map(VarId::new);
                            let recv = r.opt32()?.map(VarId::new);
                            let target = MethodId::new(r.u32()?);
                            let na = r.bounded_len(4)?;
                            let mut args = Vec::with_capacity(na);
                            for _ in 0..na {
                                args.push(VarId::new(r.u32()?));
                            }
                            DeltaStmt::Call {
                                lhs,
                                recv,
                                target,
                                args,
                            }
                        }
                        t => return Err(DecodeError::BadTag(t)),
                    };
                    DeltaOp::AddStmt { method, stmt }
                }
                4 => DeltaOp::RemoveStmt {
                    method: MethodId::new(r.u32()?),
                    index: r.u32()?,
                },
                t => return Err(DecodeError::BadTag(t)),
            });
        }
        Ok(ProgramDelta { ops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Program {
        csc_frontend_fixture()
    }

    // A tiny program assembled with the builder (the ir crate cannot depend
    // on the frontend).
    fn csc_frontend_fixture() -> Program {
        let mut b = crate::ProgramBuilder::new();
        let object = b.object_class();
        let item = b.add_class("Item", Some(object));
        let boxc = b.add_class("Box", Some(object));
        b.add_field(boxc, "f", Type::Class(item));
        let m = b.begin_method(boxc, "get", MethodKind::Instance, &[], Type::Class(item));
        m.finish();
        let mut main = b.begin_method(object, "main", MethodKind::Static, &[], Type::Void);
        let v = main.local("b", Type::Class(boxc));
        main.new_obj(v, boxc, "b1");
        let entry = main.finish();
        b.set_entry(entry);
        b.finish().unwrap()
    }

    #[test]
    fn apply_appends_entities_with_stable_ids() {
        let p = base();
        let counts = EntityCounts::of(&p);
        let main = p.entry();
        let bvar = p.method(main).vars()[0];
        let item = p.class_by_name("Item").unwrap();
        let delta = ProgramDelta {
            ops: vec![
                DeltaOp::AddLocal {
                    method: main,
                    class: item,
                },
                DeltaOp::AddStmt {
                    method: main,
                    stmt: DeltaStmt::New {
                        lhs: VarId::from_usize(counts.vars),
                        class: item,
                    },
                },
                DeltaOp::AddStmt {
                    method: main,
                    stmt: DeltaStmt::Assign {
                        lhs: bvar,
                        rhs: bvar,
                    },
                },
            ],
        };
        let (patched, fx) = delta.apply(&p).unwrap();
        assert_eq!(patched.vars().len(), counts.vars + 1);
        assert_eq!(patched.objs().len(), counts.objs + 1);
        assert_eq!(fx.added_stmts.len(), 2);
        assert!(fx.additions_only());
        // Base entities unchanged under the same ids.
        assert_eq!(patched.var(bvar).name(), p.var(bvar).name());
        assert_eq!(
            patched.method(main).body().len(),
            p.method(main).body().len() + 2
        );
    }

    #[test]
    fn remove_stmt_records_tree_and_keeps_sites() {
        let p = base();
        let main = p.entry();
        let delta = ProgramDelta {
            ops: vec![DeltaOp::RemoveStmt {
                method: main,
                index: 0,
            }],
        };
        let (patched, fx) = delta.apply(&p).unwrap();
        assert_eq!(
            patched.method(main).body().len(),
            p.method(main).body().len() - 1
        );
        assert_eq!(fx.removed_stmts.len(), 1);
        assert!(!fx.additions_only());
        // Site tables are append-only even under removal.
        assert_eq!(patched.objs().len(), p.objs().len());
    }

    #[test]
    fn add_method_and_override_updates_vtable() {
        let p = base();
        let boxc = p.class_by_name("Box").unwrap();
        let get = p.resolve_method(boxc, "get").unwrap();
        let sig = p.method(get).sig();
        let delta = ProgramDelta {
            ops: vec![
                DeltaOp::AddClass {
                    name: "SubBox".to_owned(),
                    superclass: Some(boxc),
                    fields: vec![],
                },
                DeltaOp::AddMethod {
                    class: ClassId::from_usize(p.classes().len()),
                    name: "get".to_owned(),
                    params: vec![],
                    ret: Some(p.class_by_name("Item").unwrap()),
                    is_static: false,
                },
            ],
        };
        let (patched, fx) = delta.apply(&p).unwrap();
        let sub = *fx.added_classes.first().unwrap();
        let m = *fx.added_methods.first().unwrap();
        assert_eq!(
            patched.method(m).sig(),
            sig,
            "same name+params interns the same sig"
        );
        assert_eq!(patched.dispatch(sub, get), Some(m));
        assert_eq!(
            patched.dispatch(boxc, get),
            Some(get),
            "old dispatch intact"
        );
        assert!(patched.is_subclass(sub, boxc));
    }

    #[test]
    fn validation_rejects_foreign_vars_and_bad_ids() {
        let p = base();
        let main = p.entry();
        let boxc = p.class_by_name("Box").unwrap();
        let get = p.resolve_method(boxc, "get").unwrap();
        let this = p.method(get).this_var().unwrap();
        let err = ProgramDelta {
            ops: vec![DeltaOp::AddStmt {
                method: main,
                stmt: DeltaStmt::Assign {
                    lhs: this,
                    rhs: this,
                },
            }],
        }
        .apply(&p)
        .unwrap_err();
        assert_eq!(err, DeltaError::ForeignVar(main, this));
        let err = ProgramDelta {
            ops: vec![DeltaOp::RemoveStmt {
                method: main,
                index: 99,
            }],
        }
        .apply(&p)
        .unwrap_err();
        assert_eq!(err, DeltaError::BadRemoveIndex(main, 99));
    }

    #[test]
    fn codec_roundtrips_and_rejects_corruption() {
        let p = base();
        let main = p.entry();
        let item = p.class_by_name("Item").unwrap();
        let delta = ProgramDelta {
            ops: vec![
                DeltaOp::AddClass {
                    name: "X".to_owned(),
                    superclass: None,
                    fields: vec![("g".to_owned(), item)],
                },
                DeltaOp::AddLocal {
                    method: main,
                    class: item,
                },
                DeltaOp::AddStmt {
                    method: main,
                    stmt: DeltaStmt::Call {
                        lhs: None,
                        recv: None,
                        target: main,
                        args: vec![],
                    },
                },
                DeltaOp::RemoveStmt {
                    method: main,
                    index: 0,
                },
            ],
        };
        let bytes = delta.to_bytes();
        assert_eq!(ProgramDelta::from_bytes(&bytes).unwrap(), delta);
        // Truncation and header corruption fail cleanly.
        assert!(ProgramDelta::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(ProgramDelta::from_bytes(&bad).is_err());
    }
}
